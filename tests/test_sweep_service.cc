/**
 * @file
 * Crash-safe sweep service tests (DESIGN.md §14): canonical job
 * hashing, exact RunOptions/RunResult serialization, write-ahead
 * journal durability and torn-tail tolerance, content-addressed cache
 * integrity, deterministic retry backoff, graceful stop, retry and
 * quarantine supervision, collision-free forensics naming, wall-clock
 * deadlines, and real SIGKILL worker loss in subprocess-isolation
 * mode.
 *
 * Naming keys the ctest label partition: SweepServiceConcurrencyTest
 * and SweepServiceFarmConcurrencyTest run under ThreadSanitizer with
 * the other concurrency suites, while SweepServiceTest /
 * SweepServiceIsolateTest stay in the unit label (the isolate suite
 * forks, which TSan cannot follow).
 */

#include <gtest/gtest.h>

#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <vector>

#include "sim/check/forensics.hh"
#include "soc/checkpoint_farm.hh"
#include "soc/run_io.hh"
#include "vector/engine_presets.hh"
#include "sweep/service/digest.hh"
#include "sweep/service/job_hash.hh"
#include "sweep/service/journal.hh"
#include "sweep/service/result_cache.hh"
#include "sweep/service/service.hh"

namespace bvl
{
namespace
{

/** Fresh scratch directory per test, under the gtest temp root. */
std::string
scratchDir(const char *tag)
{
    std::string dir = ::testing::TempDir() + "bvl_sweep_" + tag + "_" +
                      std::to_string(::getpid());
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

SweepJob
vvaddJob()
{
    return {Design::d1b4VL, "vvadd", Scale::tiny, {}};
}

void
expectSameResult(const RunResult &a, const RunResult &b)
{
    // Serialized equality is the property the journal and cache rely
    // on: it covers every field, including stats and ns, exactly.
    EXPECT_EQ(runResultToJson(a).dump(0), runResultToJson(b).dump(0));
}

// --- canonical job hash ------------------------------------------------

TEST(SweepServiceTest, JobHashIsStableAndSensitive)
{
    SweepJob job = vvaddJob();
    std::string h = jobHashHex(job);
    EXPECT_EQ(h.size(), 64u);
    EXPECT_EQ(h, jobHashHex(job));

    SweepJob other = job;
    other.workload = "saxpy";
    EXPECT_NE(jobHashHex(other), h);

    other = job;
    other.design = Design::d1L;
    EXPECT_NE(jobHashHex(other), h);

    other = job;
    other.scale = Scale::small;
    EXPECT_NE(jobHashHex(other), h);

    other = job;
    other.opts.bigGhz = 0.5;
    EXPECT_NE(jobHashHex(other), h);

    // Engine overrides change simulated behavior, so they must change
    // the hash (fig07/fig08/ablation sweep the same design+workload
    // under different engines).
    other = job;
    other.opts.engineOverride = VEngineParams{};
    EXPECT_NE(jobHashHex(other), h);
}

TEST(SweepServiceTest, JobHashIgnoresOutputPathsAndWallDeadline)
{
    SweepJob job = vvaddJob();
    std::string h = jobHashHex(job);

    // Where a trace or forensics report lands doesn't change the
    // simulation; neither does the host-time budget.
    SweepJob decorated = job;
    decorated.opts.trace.samplePath = "/tmp/x.csv";
    decorated.opts.check.forensicsPath = "/tmp/f.json";
    decorated.opts.wallDeadlineSec = 5.0;
    EXPECT_EQ(jobHashHex(decorated), h);

    // ...but an armed trace file does make the job uncacheable: its
    // side-effect output cannot be replayed from a journal.
    EXPECT_TRUE(jobCacheable(job));
    SweepJob traced = job;
    traced.opts.trace.path = "/tmp/t.json";
    EXPECT_FALSE(jobCacheable(traced));
}

TEST(SweepServiceTest, JobHashTracksSamplingAndCheckpointDepthNotPaths)
{
    SweepJob job = vvaddJob();
    std::string h = jobHashHex(job);

    // Sampling changes which windows are measured, hence the result.
    SweepJob sampled = job;
    sampled.opts.sampling.ffInsts = 1000;
    sampled.opts.sampling.warmupInsts = 100;
    sampled.opts.sampling.detailInsts = 500;
    sampled.opts.sampling.periods = 4;
    EXPECT_NE(jobHashHex(sampled), h);
    EXPECT_TRUE(jobCacheable(sampled));

    // The fast-forward depth changes where detailed timing starts.
    SweepJob deep = job;
    deep.opts.checkpoint.ffInsts = 500;
    EXPECT_NE(jobHashHex(deep), h);

    // Checkpoint file locations are plumbing, not semantics: a
    // restored run is byte-identical to its save run, so the paths
    // must not change the hash — but they do make the job uncacheable
    // (saving must actually write; restoring must actually read).
    SweepJob saver = deep;
    saver.opts.checkpoint.savePath = "/tmp/ck.bvl";
    EXPECT_EQ(jobHashHex(saver), jobHashHex(deep));
    EXPECT_FALSE(jobCacheable(saver));
    SweepJob restorer = deep;
    restorer.opts.checkpoint.restorePath = "/tmp/ck.bvl";
    EXPECT_EQ(jobHashHex(restorer), jobHashHex(deep));
    EXPECT_FALSE(jobCacheable(restorer));

    // The farm and strict knobs only change HOW the prefix state is
    // obtained (shared entry vs cold re-simulation), never the
    // simulated result — a warm farm rerun must keep hitting the same
    // journal rows as the cold sweep that wrote them.
    SweepJob farmed = deep;
    farmed.opts.checkpoint.farm = true;
    farmed.opts.checkpoint.farmDir = "/tmp/farm";
    EXPECT_EQ(jobHashHex(farmed), jobHashHex(deep));
    SweepJob strict = restorer;
    strict.opts.checkpoint.strict = true;
    EXPECT_EQ(jobHashHex(strict), jobHashHex(restorer));
}

// --- exact serialization round-trip ------------------------------------

TEST(SweepServiceTest, RunOptionsRoundTripIsExact)
{
    RunOptions opts;
    opts.limitNs = 123456.75;
    opts.bigGhz = 2.7182818284590452;
    opts.watchdog = true;
    opts.wallDeadlineSec = 1.5;
    opts.check.lockstep = true;
    opts.engineOverride = VEngineParams{};
    opts.engineOverride->chimes = 3;

    Json j = runOptionsToJson(opts);
    RunOptions back = runOptionsFromJson(Json::parse(j.dump(0)));
    EXPECT_EQ(runOptionsToJson(back).dump(0), j.dump(0));
    ASSERT_TRUE(back.engineOverride.has_value());
    EXPECT_EQ(back.engineOverride->chimes, 3u);
    EXPECT_EQ(back.bigGhz, opts.bigGhz);
}

TEST(SweepServiceTest, RunStatusNamesAreExhaustiveAndRoundTrip)
{
    // Iterates the enum by count: adding a RunStatus without updating
    // numRunStatuses + runStatusName (and thus run_io) fails here, not
    // in a sweep journal three PRs later.
    std::set<std::string> seen;
    for (unsigned i = 0; i < numRunStatuses; ++i) {
        auto s = static_cast<RunStatus>(i);
        std::string name = runStatusName(s);
        EXPECT_NE(name, "?") << "RunStatus " << i << " is unnamed; "
                             << "extend runStatusName()";
        EXPECT_TRUE(seen.insert(name).second)
            << "duplicate status name '" << name << "'";
        EXPECT_EQ(runStatusFromName(name), s);
    }
    // ...and the value past the end must be unnamed, so forgetting to
    // bump numRunStatuses after extending the enum also fails.
    EXPECT_STREQ(runStatusName(static_cast<RunStatus>(numRunStatuses)),
                 "?");
    EXPECT_THROW(runStatusFromName("no-such-status"), SimFatalError);
}

TEST(SweepServiceTest, RunOptionsEveryFieldRoundTripsExactly)
{
    // Every RunOptions field set to a non-default value, including the
    // PR-7 sampling and checkpoint blocks: the serialized form must
    // reproduce the struct exactly, or journal replay and job hashing
    // silently diverge.
    RunOptions opts;
    opts.bigGhz = 2.25;
    opts.littleGhz = 0.8125;
    opts.engineOverride = VEngineParams{};
    opts.engineOverride->chimes = 2;
    opts.limitNs = 777.5;
    opts.verifyResult = false;
    opts.watchdog = false;
    opts.watchdogIntervalNs = 5000.0;
    opts.wallDeadlineSec = 9.25;
    opts.check.lockstep = true;
    opts.trace.path = "/tmp/trace.json";
    opts.trace.samplePath = "/tmp/sample.csv";
    opts.sampling.ffInsts = 20000;
    opts.sampling.warmupInsts = 1000;
    opts.sampling.detailInsts = 4000;
    opts.sampling.periods = 8;
    opts.checkpoint.savePath = "/tmp/ck.bvl";
    opts.checkpoint.restorePath = "/tmp/ck2.bvl";
    opts.checkpoint.ffInsts = 12345;
    opts.checkpoint.farm = true;
    opts.checkpoint.farmDir = "/tmp/farm";
    opts.checkpoint.strict = true;

    Json j = runOptionsToJson(opts);
    RunOptions back = runOptionsFromJson(Json::parse(j.dump(0)));
    EXPECT_EQ(runOptionsToJson(back).dump(0), j.dump(0));
    EXPECT_EQ(back.sampling.ffInsts, 20000u);
    EXPECT_EQ(back.sampling.warmupInsts, 1000u);
    EXPECT_EQ(back.sampling.detailInsts, 4000u);
    EXPECT_EQ(back.sampling.periods, 8u);
    EXPECT_TRUE(back.sampling.enabled());
    EXPECT_EQ(back.checkpoint.savePath, "/tmp/ck.bvl");
    EXPECT_EQ(back.checkpoint.restorePath, "/tmp/ck2.bvl");
    EXPECT_EQ(back.checkpoint.ffInsts, 12345u);
    EXPECT_TRUE(back.checkpoint.farm);
    EXPECT_EQ(back.checkpoint.farmDir, "/tmp/farm");
    EXPECT_TRUE(back.checkpoint.strict);
    EXPECT_FALSE(back.verifyResult);
    EXPECT_FALSE(back.watchdog);
    EXPECT_EQ(back.wallDeadlineSec, 9.25);

    // Defaults round-trip too (the has()-guarded parse paths).
    RunOptions plain;
    RunOptions plainBack = runOptionsFromJson(
        Json::parse(runOptionsToJson(plain).dump(0)));
    EXPECT_EQ(runOptionsToJson(plainBack).dump(0),
              runOptionsToJson(plain).dump(0));
    EXPECT_FALSE(plainBack.sampling.enabled());
    EXPECT_FALSE(plainBack.checkpoint.enabled());
}

TEST(SweepServiceTest, RunResultRoundTripIsExact)
{
    RunResult r = runWorkload(Design::d1b4VL, "vvadd", Scale::tiny);
    ASSERT_TRUE(r.ok()) << r.message;
    RunResult back =
        runResultFromJson(Json::parse(runResultToJson(r).dump(0)));
    expectSameResult(r, back);
    EXPECT_EQ(back.ns, r.ns);
    EXPECT_EQ(back.stats, r.stats);
    EXPECT_EQ(back.status, r.status);
}

// --- write-ahead journal -----------------------------------------------

TEST(SweepServiceTest, JournalPersistsAndReplays)
{
    std::string dir = scratchDir("journal");
    std::string path = dir + "/sweep.journal.jsonl";
    SweepJob job = vvaddJob();
    std::string hash = jobHashHex(job);
    RunResult r = runWorkload(job.design, job.workload, job.scale);
    ASSERT_TRUE(r.ok());

    {
        SweepJournal j;
        ASSERT_TRUE(j.open(path));
        RunResult out;
        EXPECT_FALSE(j.lookup(hash, &out));
        j.append(hash, job, 1, "sim", r);
        EXPECT_TRUE(j.lookup(hash, &out));
        expectSameResult(out, r);
    }

    // A fresh journal object (fresh process, conceptually) replays the
    // same bytes.
    SweepJournal j2;
    ASSERT_TRUE(j2.open(path));
    EXPECT_EQ(j2.loadedEntries(), 1u);
    RunResult out;
    ASSERT_TRUE(j2.lookup(hash, &out));
    expectSameResult(out, r);
}

TEST(SweepServiceTest, JournalToleratesTornTail)
{
    std::string dir = scratchDir("torn");
    std::string path = dir + "/sweep.journal.jsonl";
    SweepJob job = vvaddJob();
    RunResult r = runWorkload(job.design, job.workload, job.scale);
    ASSERT_TRUE(r.ok());
    {
        SweepJournal j;
        ASSERT_TRUE(j.open(path));
        j.append(jobHashHex(job), job, 1, "sim", r);
    }

    // Simulate kill -9 mid-append: a second row cut off mid-JSON.
    {
        std::ofstream tail(path, std::ios::app);
        tail << "{\"schema\":\"bvl-sweep-journal-v1\",\"hash\":\"ab";
    }

    SweepJournal j2;
    ASSERT_TRUE(j2.open(path));
    EXPECT_EQ(j2.loadedEntries(), 1u);
    EXPECT_EQ(j2.skippedLines(), 1u);
    RunResult out;
    EXPECT_TRUE(j2.lookup(jobHashHex(job), &out));
    expectSameResult(out, r);
}

// --- content-addressed cache -------------------------------------------

TEST(SweepServiceTest, CacheStoresAndVerifies)
{
    std::string dir = scratchDir("cache");
    SweepJob job = vvaddJob();
    std::string hash = jobHashHex(job);
    RunResult r = runWorkload(job.design, job.workload, job.scale);
    ASSERT_TRUE(r.ok());

    ResultCache cache;
    cache.setDir(dir);
    RunResult out;
    EXPECT_FALSE(cache.lookup(hash, &out));
    cache.store(hash, r);
    ASSERT_TRUE(cache.lookup(hash, &out));
    expectSameResult(out, r);
    EXPECT_EQ(cache.corruptEntries(), 0u);
}

TEST(SweepServiceTest, CacheQuarantinesCorruptEntries)
{
    std::string dir = scratchDir("poison");
    SweepJob job = vvaddJob();
    std::string hash = jobHashHex(job);
    RunResult r = runWorkload(job.design, job.workload, job.scale);
    ASSERT_TRUE(r.ok());

    ResultCache cache;
    cache.setDir(dir);
    cache.store(hash, r);
    std::string path = cache.entryPath(hash);

    // Flip the simulated time inside the stored result: the document
    // still parses, but the digest no longer matches.
    std::ifstream in(path);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    in.close();
    auto at = text.find("\"ns\":");
    ASSERT_NE(at, std::string::npos);
    text[at + 5] = text[at + 5] == '9' ? '8' : '9';
    std::ofstream(path) << text;

    RunResult out;
    EXPECT_FALSE(cache.lookup(hash, &out));
    EXPECT_EQ(cache.corruptEntries(), 1u);
    EXPECT_FALSE(std::filesystem::exists(path));
    EXPECT_TRUE(std::filesystem::exists(path + ".corrupt"));

    // Re-store repairs the entry (the service re-simulates, then
    // stores), and a truncated file is caught the same way.
    cache.store(hash, r);
    ASSERT_TRUE(cache.lookup(hash, &out));
    std::filesystem::resize_file(path, 10);
    EXPECT_FALSE(cache.lookup(hash, &out));
    EXPECT_EQ(cache.corruptEntries(), 2u);
}

// --- deterministic backoff ---------------------------------------------

TEST(SweepServiceTest, BackoffScheduleIsDeterministic)
{
    SweepServiceOptions opts;
    opts.maxAttempts = 4;
    opts.backoffBaseMs = 10.0;
    std::string hash = jobHashHex(vvaddJob());

    auto a = SweepService::backoffScheduleMs(opts, hash);
    auto b = SweepService::backoffScheduleMs(opts, hash);
    ASSERT_EQ(a.size(), 3u);
    EXPECT_EQ(a, b);

    // Jittered around an exponential envelope: delay i is in
    // [0.5, 1.5) * base * 2^i.
    double base = opts.backoffBaseMs;
    for (double d : a) {
        EXPECT_GE(d, 0.5 * base);
        EXPECT_LT(d, 1.5 * base);
        base *= 2.0;
    }

    // Different jobs (and different sweep seeds) desynchronize.
    SweepJob other = vvaddJob();
    other.workload = "saxpy";
    EXPECT_NE(a, SweepService::backoffScheduleMs(opts,
                                                 jobHashHex(other)));
    SweepServiceOptions reseeded = opts;
    reseeded.backoffSeed ^= 0x1234;
    EXPECT_NE(a, SweepService::backoffScheduleMs(reseeded, hash));
}

// --- supervision: retry, quarantine, forensics naming, deadlines -------

TEST(SweepServiceTest, PersistentFailureIsQuarantinedWithForensicsPath)
{
    std::string dir = scratchDir("quarantine");
    SweepServiceOptions opts;
    opts.jobs = 2;
    opts.maxAttempts = 2;
    opts.backoffBaseMs = 0.01;
    opts.retryOn = {RunStatus::sim_error};

    SweepService svc(opts);
    // Two distinct always-failing jobs sharing one configured
    // forensics path: the service must give each a collision-free
    // per-job file name.
    SweepJob bad1{Design::d1b, "no-such-workload", Scale::tiny, {}};
    bad1.opts.check.forensicsPath = dir + "/failure.json";
    SweepJob bad2 = bad1;
    bad2.workload = "also-missing";

    auto f1 = svc.submit(bad1);
    auto f2 = svc.submit(bad2);
    RunResult r1 = f1.get();
    RunResult r2 = f2.get();

    // The sweep completed: failures degraded to recorded rows.
    EXPECT_EQ(r1.status, RunStatus::sim_error);
    EXPECT_EQ(r2.status, RunStatus::sim_error);

    auto s = svc.summary();
    EXPECT_EQ(s.submitted, 2u);
    EXPECT_EQ(s.simulated, 4u);     // 2 jobs x 2 attempts
    EXPECT_EQ(s.retries, 2u);
    EXPECT_EQ(s.failed, 2u);
    EXPECT_EQ(s.quarantines, 2u);

    auto q = svc.quarantined();
    ASSERT_EQ(q.size(), 2u);
    EXPECT_EQ(q[0].attempts, 2u);
    EXPECT_NE(q[0].forensicsPath, q[1].forensicsPath);
    for (const auto &rec : q) {
        // <dir>/failure.<hash16>.json
        EXPECT_NE(rec.forensicsPath.find(rec.hash.substr(0, 16)),
                  std::string::npos);
        EXPECT_EQ(rec.forensicsPath.find(dir + "/failure."), 0u);
    }
}

TEST(SweepServiceTest, NonRetryableFailureFailsFastWithoutQuarantine)
{
    SweepServiceOptions opts;
    opts.jobs = 1;
    opts.maxAttempts = 3;
    SweepService svc(opts);    // default retryOn excludes sim_error

    auto r = svc.submit({Design::d1b, "no-such-workload", Scale::tiny,
                         {}}).get();
    EXPECT_EQ(r.status, RunStatus::sim_error);
    auto s = svc.summary();
    EXPECT_EQ(s.simulated, 1u);
    EXPECT_EQ(s.retries, 0u);
    EXPECT_EQ(s.quarantines, 0u);
    EXPECT_EQ(s.failed, 1u);
}

TEST(SweepServiceTest, ResumedJobHonorsRetryBudget)
{
    // Regression (PR 7): journal replay must honor the recorded
    // attempt counter. A sweep interrupted mid-retry used to replay
    // the failure as final (or, before attempts were journaled at
    // all, restart the count from zero on resume, exceeding the
    // budget). The invariant: across any number of interruptions and
    // resumes, a retryable job runs exactly maxAttempts simulations,
    // then stays quarantined forever.
    SweepService::clearStop();
    std::string dir = scratchDir("budget");
    SweepJob bad{Design::d1b, "no-such-workload", Scale::tiny, {}};

    auto makeOpts = [&] {
        SweepServiceOptions o;
        o.jobs = 1;
        o.journalPath = dir + "/sweep.journal.jsonl";
        o.maxAttempts = 3;
        o.backoffBaseMs = 0.01;
        o.retryOn = {RunStatus::sim_error};
        return o;
    };

    // Sweep 1: the stop request lands during attempt 0, so the retry
    // loop exits after one simulation and journals attempts=1.
    {
        auto o = makeOpts();
        o.preRunHook = [](const SweepJob &, unsigned) {
            SweepService::requestStop();
        };
        SweepService svc(o);
        auto r = svc.submit(bad).get();
        EXPECT_EQ(r.status, RunStatus::sim_error);
        auto s = svc.summary();
        EXPECT_EQ(s.simulated, 1u);
        EXPECT_EQ(s.retries, 0u);
        EXPECT_EQ(s.quarantines, 0u);    // budget not exhausted yet
        EXPECT_TRUE(s.interrupted);
        SweepService::clearStop();
    }

    // Sweep 2 (resume): picks up at attempt 1 — never re-runs attempt
    // 0, and stops at the original budget of 3 total attempts.
    {
        auto o = makeOpts();
        std::vector<unsigned> attemptsSeen;
        o.preRunHook = [&](const SweepJob &, unsigned attempt) {
            attemptsSeen.push_back(attempt);
        };
        SweepService svc(o);
        auto r = svc.submit(bad).get();
        EXPECT_EQ(r.status, RunStatus::sim_error);
        ASSERT_EQ(attemptsSeen.size(), 2u);
        EXPECT_EQ(attemptsSeen[0], 1u);
        EXPECT_EQ(attemptsSeen[1], 2u);
        auto s = svc.summary();
        EXPECT_EQ(s.simulated, 2u);
        EXPECT_EQ(s.journalHits, 0u);    // a live resume, not a replay
        EXPECT_EQ(s.quarantines, 1u);
        auto q = svc.quarantined();
        ASSERT_EQ(q.size(), 1u);
        EXPECT_EQ(q[0].attempts, 3u);
        EXPECT_EQ(q[0].workload, "no-such-workload");
    }

    // Sweep 3: the budget is spent, so the journaled failure replays
    // with zero simulations — and the quarantine row is reconstructed
    // so the sweep report still shows the job as exhausted.
    {
        SweepService svc(makeOpts());
        auto r = svc.submit(bad).get();
        EXPECT_EQ(r.status, RunStatus::sim_error);
        auto s = svc.summary();
        EXPECT_EQ(s.simulated, 0u);
        EXPECT_EQ(s.journalHits, 1u);
        EXPECT_EQ(s.failed, 1u);
        auto q = svc.quarantined();
        ASSERT_EQ(q.size(), 1u);
        EXPECT_EQ(q[0].attempts, 3u);
    }
    SweepService::clearStop();
}

TEST(SweepServiceTest, WallDeadlineYieldsDeadlineStatus)
{
    SweepServiceOptions opts;
    opts.jobs = 1;
    opts.maxAttempts = 1;
    opts.wallDeadlineSec = 1e-9;    // any watchdog check trips it
    SweepService svc(opts);

    SweepJob job = vvaddJob();
    job.opts.watchdogIntervalNs = 100.0;    // check early and often
    auto r = svc.submit(job).get();
    EXPECT_EQ(r.status, RunStatus::deadline);
    EXPECT_FALSE(r.ok());
}

// --- thread-pool integration (runs under TSan via the concurrency
// --- label) ------------------------------------------------------------

TEST(SweepServiceConcurrencyTest, InterruptedSweepResumesByteIdentical)
{
    std::string dir = scratchDir("resume");
    std::string journal = dir + "/sweep.journal.jsonl";
    const char *names[] = {"vvadd", "saxpy", "mmult", "pathfinder"};

    auto makeOpts = [&] {
        SweepServiceOptions o;
        o.jobs = 2;
        o.journalPath = journal;
        return o;
    };

    // Uninterrupted reference sweep (no journal).
    std::vector<std::string> reference;
    {
        SweepServiceOptions o;
        o.jobs = 2;
        SweepService svc(o);
        std::vector<std::future<RunResult>> futs;
        for (const char *n : names)
            futs.push_back(svc.submit({Design::d1b4VL, n, Scale::tiny,
                                       {}}));
        for (auto &f : futs)
            reference.push_back(runResultToJson(f.get()).dump(0));
    }

    // "Killed" sweep: only a prefix of the grid completed before the
    // process died. (A real kill -9 of a worker process is exercised
    // in SweepServiceIsolateTest and scripts/ci.sh.)
    {
        SweepService svc(makeOpts());
        svc.submit({Design::d1b4VL, names[0], Scale::tiny, {}}).get();
        svc.submit({Design::d1b4VL, names[1], Scale::tiny, {}}).get();
        EXPECT_EQ(svc.summary().simulated, 2u);
    }

    // Resumed sweep: the journaled prefix replays, the remainder
    // simulates, and every byte matches the uninterrupted run.
    SweepService svc(makeOpts());
    std::vector<std::future<RunResult>> futs;
    for (const char *n : names)
        futs.push_back(svc.submit({Design::d1b4VL, n, Scale::tiny,
                                   {}}));
    for (unsigned i = 0; i < futs.size(); ++i)
        EXPECT_EQ(runResultToJson(futs[i].get()).dump(0), reference[i]);

    auto s = svc.summary();
    EXPECT_EQ(s.journalHits, 2u);
    EXPECT_EQ(s.simulated, 2u);
}

TEST(SweepServiceConcurrencyTest, WarmCacheRunsZeroSimulations)
{
    std::string dir = scratchDir("warm");
    SweepServiceOptions opts;
    opts.jobs = 2;
    opts.cacheDir = dir + "/cache";

    std::vector<std::string> cold;
    {
        SweepService svc(opts);
        std::vector<std::future<RunResult>> futs;
        futs.push_back(svc.submit(vvaddJob()));
        futs.push_back(svc.submit({Design::d1L, "vvadd", Scale::tiny,
                                   {}}));
        for (auto &f : futs)
            cold.push_back(runResultToJson(f.get()).dump(0));
        EXPECT_EQ(svc.summary().simulated, 2u);
    }

    SweepService svc(opts);
    std::vector<std::future<RunResult>> futs;
    futs.push_back(svc.submit(vvaddJob()));
    futs.push_back(svc.submit({Design::d1L, "vvadd", Scale::tiny, {}}));
    for (unsigned i = 0; i < futs.size(); ++i)
        EXPECT_EQ(runResultToJson(futs[i].get()).dump(0), cold[i]);

    auto s = svc.summary();
    EXPECT_EQ(s.simulated, 0u);
    EXPECT_EQ(s.cacheHits, 2u);
}

TEST(SweepServiceConcurrencyTest, RequestStopDrainsAndThrows)
{
    SweepService::clearStop();
    SweepServiceOptions opts;
    opts.jobs = 2;
    SweepService svc(opts);

    // Jobs submitted after a stop request fail fast with the
    // dedicated exception; nothing hangs.
    SweepService::requestStop();
    EXPECT_TRUE(SweepService::stopRequested());
    auto fut = svc.submit(vvaddJob());
    EXPECT_THROW(fut.get(), SweepInterrupted);
    EXPECT_TRUE(svc.summary().interrupted);
    SweepService::clearStop();
}

// --- checkpoint-prefix farm under the thread pool (TSan via the
// --- concurrency label) ------------------------------------------------

TEST(SweepServiceFarmConcurrencyTest, RacingCellsProduceOnePrefix)
{
    // Eight cells, one shared prefix, eight workers: every cell misses
    // the farm at startup and races for the entry's flock. Exactly one
    // may produce; the rest must block on the claim and restore what
    // it published — and every result must match the cold per-cell
    // fast-forward byte for byte.
    std::string dir = scratchDir("farmrace");
    const unsigned depths[] = {2, 3, 4, 6, 8, 12, 16, 32};
    constexpr unsigned cells = 8;

    auto cellJob = [&](unsigned depth) {
        SweepJob job{Design::d1b4VL, "saxpy", Scale::tiny, {}};
        job.opts.engineOverride = vlittlePreset();
        job.opts.engineOverride->loadQueueLines = depth;
        job.opts.checkpoint.ffInsts = 150;
        return job;
    };

    std::vector<std::string> cold;
    for (unsigned d : depths) {
        SweepJob job = cellJob(d);
        RunResult r = runWorkload(job.design, job.workload, job.scale,
                                  job.opts);
        ASSERT_TRUE(r.ok()) << r.message;
        r.log.clear();
        cold.push_back(runResultToJson(r).dump(0));
    }

    std::uint64_t p0 = CheckpointFarm::produced();
    std::uint64_t h0 = CheckpointFarm::hits();

    SweepServiceOptions o;
    o.jobs = cells;
    SweepService svc(o);
    std::vector<std::future<RunResult>> futs;
    for (unsigned d : depths) {
        SweepJob job = cellJob(d);
        job.opts.checkpoint.farm = true;
        job.opts.checkpoint.farmDir = dir;
        futs.push_back(svc.submit(job));
    }
    for (unsigned i = 0; i < futs.size(); ++i) {
        RunResult r = futs[i].get();
        EXPECT_TRUE(r.ok()) << r.message;
        r.log.clear();
        EXPECT_EQ(runResultToJson(r).dump(0), cold[i])
            << "queue depth " << depths[i];
    }

    // Single-flight: one producer, everyone else a hit, one entry.
    EXPECT_EQ(CheckpointFarm::produced() - p0, 1u);
    EXPECT_EQ(CheckpointFarm::hits() - h0, cells - 1);
    unsigned entries = 0;
    std::error_code ec;
    for (auto it = std::filesystem::recursive_directory_iterator(
             dir, ec);
         !ec && it != std::filesystem::recursive_directory_iterator();
         it.increment(ec)) {
        if (it->is_regular_file() && it->path().extension() == ".bvl")
            ++entries;
    }
    EXPECT_EQ(entries, 1u);

    // The farm counters surface in the sweep summary line.
    std::string line = svc.summaryLine();
    EXPECT_NE(line.find("farm_hits="), std::string::npos) << line;
    EXPECT_NE(line.find("farm_produced="), std::string::npos) << line;
}

// --- subprocess isolation (forks; stays out of the TSan label) ---------

TEST(SweepServiceIsolateTest, CrashingWorkerIsContainedAndRetried)
{
    SweepServiceOptions opts;
    opts.jobs = 1;
    opts.isolate = true;
    opts.maxAttempts = 2;
    opts.backoffBaseMs = 0.01;
    // The hook runs inside the forked worker: a real SIGKILL on the
    // first attempt, a clean run on the second.
    opts.preRunHook = [](const SweepJob &, unsigned attempt) {
        if (attempt == 0)
            ::raise(SIGKILL);
    };
    SweepService svc(opts);

    auto r = svc.submit(vvaddJob()).get();
    EXPECT_TRUE(r.ok()) << r.message;
    auto s = svc.summary();
    EXPECT_EQ(s.simulated, 2u);
    EXPECT_EQ(s.retries, 1u);
    EXPECT_EQ(s.quarantines, 0u);

    // The contained result matches an in-process run exactly.
    RunResult direct = runWorkload(Design::d1b4VL, "vvadd", Scale::tiny);
    expectSameResult(r, direct);
}

TEST(SweepServiceIsolateTest, PersistentCrasherIsQuarantined)
{
    SweepServiceOptions opts;
    opts.jobs = 1;
    opts.isolate = true;
    opts.maxAttempts = 2;
    opts.backoffBaseMs = 0.01;
    // One design point SIGSEGVs on every attempt; its neighbors are
    // healthy. The sweep must complete around it.
    opts.preRunHook = [](const SweepJob &job, unsigned) {
        if (job.design == Design::d1b4VL)
            ::raise(SIGSEGV);
    };
    SweepService svc(opts);

    auto ok1 = svc.submit({Design::d1L, "vvadd", Scale::tiny, {}});
    auto bad = svc.submit(vvaddJob());
    auto ok2 = svc.submit({Design::d1L, "saxpy", Scale::tiny, {}});

    EXPECT_TRUE(ok1.get().ok());
    EXPECT_TRUE(ok2.get().ok());

    RunResult r = bad.get();
    EXPECT_EQ(r.status, RunStatus::worker_lost);
    // Plain builds see "killed by signal 11"; sanitizer builds
    // intercept the SIGSEGV and the child exits with a report instead,
    // yielding "exited without a result". Either way the worker died.
    EXPECT_NE(r.message.find("worker"), std::string::npos) << r.message;

    auto q = svc.quarantined();
    ASSERT_EQ(q.size(), 1u);
    EXPECT_EQ(q[0].status, RunStatus::worker_lost);
    EXPECT_EQ(q[0].attempts, 2u);
    EXPECT_EQ(q[0].workload, "vvadd");
}

} // namespace
} // namespace bvl
