/**
 * @file
 * Unit tests for the simulation kernel: event-queue ordering and
 * determinism, clock-domain arithmetic (including DVFS frequencies),
 * statistics registry, and the deterministic RNG.
 */

#include <gtest/gtest.h>

#include "sim/clock_domain.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"

namespace bvl
{
namespace
{

TEST(EventQueueTest, FiresInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueueTest, SameTickIsFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueueTest, EventsMayScheduleEvents)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 100)
            eq.schedule(1, chain);
    };
    eq.schedule(1, chain);
    eq.run();
    EXPECT_EQ(depth, 100);
    EXPECT_EQ(eq.now(), 100u);
}

TEST(EventQueueTest, RunUntilStopsOnPredicate)
{
    EventQueue eq;
    int count = 0;
    for (int i = 1; i <= 10; ++i)
        eq.schedule(i * 10, [&] { ++count; });
    bool reached = eq.runUntil([&] { return count >= 5; });
    EXPECT_TRUE(reached);
    EXPECT_EQ(count, 5);
    EXPECT_LT(eq.now(), 100u);
}

TEST(EventQueueTest, RunHonoursTickLimit)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(1000, [&] { ++fired; });
    EXPECT_FALSE(eq.run(100));
    EXPECT_EQ(fired, 1);
}

TEST(EventQueueTest, SchedulingInPastPanics)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.run();
    EXPECT_THROW(eq.scheduleAt(50, [] {}), SimPanicError);
    // The failed schedule must not corrupt the queue.
    EXPECT_TRUE(eq.empty());
    eq.schedule(10, [] {});
    EXPECT_TRUE(eq.run());
}

TEST(EventQueueTest, SameTickEventsFireInFifoOrder)
{
    EventQueue eq;
    std::vector<int> order;
    // Three events at the same tick, scheduled out of order relative
    // to a later and an earlier one.
    eq.schedule(50, [&] { order.push_back(1); });
    eq.schedule(50, [&] { order.push_back(2); });
    eq.schedule(20, [&] { order.push_back(0); });
    eq.schedule(50, [&] { order.push_back(3); });
    // An event scheduling more work for its own tick runs it after
    // everything already queued for that tick.
    eq.schedule(50, [&] {
        order.push_back(4);
        eq.schedule(0, [&] { order.push_back(5); });
    });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

/** Intrusive event that appends a tag to a shared order vector. */
class TagEvent : public Event
{
  public:
    TagEvent(std::vector<int> &order, int tag) : order(order), tag(tag) {}
    void process() override { order.push_back(tag); }

  private:
    std::vector<int> &order;
    int tag;
};

TEST(EventQueueTest, IntrusiveAndClosureEventsShareFifoOrder)
{
    EventQueue eq;
    std::vector<int> order;
    TagEvent a(order, 1), b(order, 3), c(order, 5);
    // Alternate intrusive and closure scheduling at one tick: both
    // kinds draw sequence numbers from the same counter, so the fire
    // order is exactly the schedule order regardless of kind.
    eq.scheduleAt(a, 40);
    eq.scheduleAt(40, [&] { order.push_back(2); });
    eq.scheduleAt(b, 40);
    eq.scheduleAt(40, [&] { order.push_back(4); });
    eq.scheduleAt(c, 40);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5}));
    EXPECT_FALSE(a.scheduled());
}

TEST(EventQueueTest, DescheduleAndRescheduleIntrusiveEvent)
{
    EventQueue eq;
    std::vector<int> order;
    TagEvent ev(order, 7);

    eq.scheduleAt(ev, 10);
    EXPECT_TRUE(ev.scheduled());
    EXPECT_EQ(eq.size(), 1u);

    // Descheduling leaves a stale heap entry behind; the queue must
    // neither fire it nor count it.
    eq.deschedule(ev);
    EXPECT_FALSE(ev.scheduled());
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.nextEventTick(), maxTick);

    // Rescheduling to a different tick fires exactly once, there.
    eq.reschedule(ev, 25);
    EXPECT_TRUE(ev.scheduled());
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{7}));
    EXPECT_EQ(eq.now(), 25u);
    EXPECT_EQ(eq.executed(), 1u);
}

TEST(ClockDomainTest, CycleTickConversions)
{
    EventQueue eq;
    ClockDomain one(eq, "1g", 1.0);
    EXPECT_EQ(one.periodPs(), 1000u);
    EXPECT_EQ(one.cyclesToTicks(7), 7000u);

    ClockDomain fast(eq, "2g", 2.0);
    EXPECT_EQ(fast.periodPs(), 500u);

    // Table VII frequencies.
    ClockDomain b3(eq, "b3", 1.4);
    EXPECT_NEAR(double(b3.periodPs()), 714.0, 1.0);
    ClockDomain l0(eq, "l0", 0.6);
    EXPECT_NEAR(double(l0.periodPs()), 1667.0, 1.0);
}

TEST(ClockDomainTest, TicksToNextEdgeIsAlwaysPositive)
{
    EventQueue eq;
    ClockDomain cd(eq, "c", 1.0);
    EXPECT_EQ(cd.ticksToNextEdge(), 1000u);
    eq.schedule(250, [] {});
    eq.run();
    EXPECT_EQ(cd.ticksToNextEdge(), 750u);
}

TEST(ClockedTest, TicksOncePerCycleWhileActive)
{
    struct Counter : Clocked
    {
        using Clocked::Clocked;
        int ticks = 0;
        bool tick() override { return ++ticks < 5; }
    };
    EventQueue eq;
    ClockDomain cd(eq, "c", 1.0);
    Counter c(cd, "counter");
    c.activate();
    eq.run();
    EXPECT_EQ(c.ticks, 5);
    EXPECT_EQ(eq.now(), 5000u);
}

TEST(ClockedTest, RedundantActivateIsSafe)
{
    struct Counter : Clocked
    {
        using Clocked::Clocked;
        int ticks = 0;
        bool tick() override { return false; }
    };
    EventQueue eq;
    ClockDomain cd(eq, "c", 1.0);
    Counter c(cd, "counter");
    c.activate();
    c.activate();
    c.activate();
    eq.run();
    EXPECT_EQ(c.ticks, 0);   // tick() returning false went dormant
    EXPECT_EQ(eq.executed(), 1u);
}

TEST(ClockedTest, DeactivateCancelsPendingTickAndReactivateRearms)
{
    struct Counter : Clocked
    {
        using Clocked::Clocked;
        int ticks = 0;
        bool tick() override { ++ticks; return false; }
    };
    EventQueue eq;
    ClockDomain cd(eq, "c", 1.0);
    Counter c(cd, "counter");

    // Cancel an armed tick before it fires: nothing runs.
    c.activate();
    EXPECT_TRUE(c.active());
    c.deactivate();
    EXPECT_FALSE(c.active());
    eq.run();
    EXPECT_EQ(c.ticks, 0);

    // Deactivate + reactivate within the same tick re-arms cleanly:
    // the tick fires exactly once at the next clock edge.
    c.activate();
    c.deactivate();
    c.activate();
    eq.run();
    EXPECT_EQ(c.ticks, 1);
    EXPECT_EQ(eq.executed(), 1u);
}

TEST(StatsTest, HandleAliasesNamedStat)
{
    StatGroup g;
    StatHandle h = g.handle("core.retired");
    EXPECT_TRUE(bool(h));
    EXPECT_EQ(h.value(), 0u);

    // Handle increments are visible through every name-keyed reader...
    h++;
    ++h;
    h += 3;
    EXPECT_EQ(g.value("core.retired"), 5u);
    EXPECT_EQ(g.sumWithPrefix("core."), 5u);

    // ...and name-keyed writes are visible through the handle.
    g.stat("core.retired") += 2;
    EXPECT_EQ(h.value(), 7u);

    // A second handle for the same name aliases the same counter.
    StatHandle h2 = g.handle("core.retired");
    h2++;
    EXPECT_EQ(h.value(), 8u);

    g.resetAll();
    EXPECT_EQ(h.value(), 0u);

    // A default-constructed handle reads false until bound.
    StatHandle unbound;
    EXPECT_FALSE(bool(unbound));
}

TEST(StatsTest, SumWithPrefixAndReset)
{
    StatGroup g;
    g.stat("core.stall.mem") += 5;
    g.stat("core.stall.fu") += 3;
    g.stat("core.cycles") += 100;
    g.stat("other") += 7;
    EXPECT_EQ(g.sumWithPrefix("core.stall."), 8u);
    EXPECT_EQ(g.sumWithPrefix("core."), 108u);
    EXPECT_EQ(g.value("missing"), 0u);
    g.resetAll();
    EXPECT_EQ(g.value("core.cycles"), 0u);
}

TEST(RngTest, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        auto v = rng.below(17);
        EXPECT_LT(v, 17u);
    }
}

TEST(RngTest, RealIsUnitInterval)
{
    Rng rng(9);
    double sum = 0;
    for (int i = 0; i < 1000; ++i) {
        double v = rng.real();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 1000.0, 0.5, 0.05);
}

} // namespace
} // namespace bvl
