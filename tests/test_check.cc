/**
 * @file
 * Tests of the online checking subsystem (src/sim/check/): lockstep
 * divergence detection, structural invariant sweeps, failure
 * forensics with replay, and the fault-plan minimizer.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "sim/check/forensics.hh"
#include "sim/check/invariants.hh"
#include "sim/check/json.hh"
#include "sim/check/minimize.hh"
#include "soc/run_driver.hh"
#include "soc/soc.hh"
#include "workloads/workload.hh"

namespace bvl
{
namespace
{

std::string
tempPath(const std::string &leaf)
{
    return ::testing::TempDir() + leaf;
}

// ------------------------------------------------------------ registry

TEST(InvariantRegistryTest, SweepReportsOnlyViolations)
{
    InvariantRegistry reg;
    bool broken = false;
    reg.add("always.ok", [] { return std::string(); });
    reg.add("sometimes.bad", [&]() -> std::string {
        return broken ? "queue over capacity" : "";
    });
    ASSERT_EQ(reg.size(), 2u);

    EXPECT_EQ(reg.sweep(), "");
    broken = true;
    std::string report = reg.sweep();
    EXPECT_NE(report.find("sometimes.bad"), std::string::npos);
    EXPECT_NE(report.find("queue over capacity"), std::string::npos);
    EXPECT_EQ(report.find("always.ok"), std::string::npos);
    EXPECT_EQ(reg.sweeps(), 2u);
    EXPECT_EQ(reg.violations(), 1u);
}

TEST(InvariantRegistryTest, SocRegistersComponentInvariants)
{
    Soc soc(Design::d1b4VL);
    // Cores, engine queues/credits and every cache register checks.
    EXPECT_GE(soc.invariantRegistry().size(), 15u);
    // A freshly built SoC must be structurally sound.
    EXPECT_EQ(soc.invariantRegistry().sweep(), "");
}

// ---------------------------------------------------------------- json

TEST(JsonTest, RoundTripsExactIntegersAndStructure)
{
    Json j = Json::object();
    j.set("seed", std::uint64_t(0xdeadbeefcafe0123ull));
    j.set("prob", 0.125);
    j.set("name", "vvadd \"tiny\"\n");
    j.set("flag", true);
    Json arr = Json::array();
    arr.push(1);
    arr.push(Json());
    j.set("list", std::move(arr));

    Json back = Json::parse(j.dump(2));
    EXPECT_EQ(back["seed"].asU64(), 0xdeadbeefcafe0123ull);
    EXPECT_EQ(back["prob"].asDouble(), 0.125);
    EXPECT_EQ(back["name"].asString(), "vvadd \"tiny\"\n");
    EXPECT_TRUE(back["flag"].asBool());
    ASSERT_EQ(back["list"].size(), 2u);
    EXPECT_EQ(back["list"].at(0).asU64(), 1u);
    EXPECT_TRUE(back["list"].at(1).isNull());
    // Compact and indented forms parse to the same document.
    EXPECT_EQ(Json::parse(j.dump(0)).dump(2), back.dump(2));
}

TEST(JsonTest, MalformedInputThrows)
{
    EXPECT_THROW(Json::parse("{\"a\": }"), SimFatalError);
    EXPECT_THROW(Json::parse("[1, 2"), SimFatalError);
    EXPECT_THROW(Json::parse("{} trailing"), SimFatalError);
}

TEST(ForensicsTest, FaultSpecRoundTrip)
{
    FaultSpec f;
    f.enabled = true;
    f.seed = 0x123456789abcdef0ull;
    f.vmuDropProb = 0.25;
    f.vmuMaxRetries = 7;
    f.script.push_back({12345, FaultKind::vmuDrop, 0});
    f.script.push_back({99999, FaultKind::vcuStall, 40});

    FaultSpec g = faultSpecFromJson(
        Json::parse(faultSpecToJson(f).dump(2)));
    EXPECT_EQ(g.enabled, f.enabled);
    EXPECT_EQ(g.seed, f.seed);
    EXPECT_EQ(g.vmuDropProb, f.vmuDropProb);
    EXPECT_EQ(g.vmuMaxRetries, f.vmuMaxRetries);
    ASSERT_EQ(g.script.size(), 2u);
    EXPECT_EQ(g.script[0].atTick, 12345u);
    EXPECT_EQ(g.script[0].kind, FaultKind::vmuDrop);
    EXPECT_EQ(g.script[1].kind, FaultKind::vcuStall);
    EXPECT_EQ(g.script[1].cycles, 40u);
}

// ------------------------------------------------------------ lockstep

TEST(LockstepTest, CleanRunsStayCleanAcrossDesigns)
{
    for (Design d : {Design::d1L, Design::d1b, Design::d1bIV,
                     Design::d1bDV, Design::d1b4VL}) {
        RunOptions opts;
        opts.check.lockstep = true;
        opts.check.invariants = true;
        RunResult r = runWorkload(d, "vvadd", Scale::tiny, opts);
        ASSERT_EQ(r.status, RunStatus::ok)
            << designName(d) << ": " << r.message;
        EXPECT_GT(r.stat("check.retires"), 0u) << designName(d);
        EXPECT_EQ(r.stat("check.divergences"), 0u) << designName(d);
        if (designHasVector(d))
            EXPECT_GT(r.stat("check.uops"), 0u) << designName(d);
    }
}

TEST(LockstepTest, SeededCorruptionCaughtAtFirstWrongRetire)
{
    SocParams sp;
    sp.design = Design::d1b4VL;
    sp.check.lockstep = true;
    Soc soc(std::move(sp));
    auto w = makeWorkload("vvadd", Scale::tiny);
    ASSERT_TRUE(w);
    w->init(soc.backing);
    ASSERT_TRUE(soc.armLockstep(true));

    constexpr std::uint64_t corruptSeq = 10;
    soc.checker()->lockstep()->corruptRetireForTest(corruptSeq,
                                                    0xdeadbeefull);

    bool done = false;
    soc.big->runProgram(w->vectorProgram(), w->fullRangeArgs(),
                        [&] { done = true; });
    try {
        soc.runUntil([&] { return done; });
        FAIL() << "corrupted retire was not caught";
    } catch (const CheckError &e) {
        ASSERT_TRUE(e.hasDivergence());
        const DivergenceRecord &d = e.divergence();
        // First wrong retire, not some later symptom.
        EXPECT_EQ(d.seq, corruptSeq);
        EXPECT_EQ(d.stream, "big");
        // The report carries the instruction, both operand values,
        // the pipeline/queue context and the preceding retires.
        EXPECT_FALSE(d.instr.empty());
        EXPECT_EQ(d.timedValue ^ d.refValue, 0xdeadbeefull);
        EXPECT_FALSE(d.queueContext.empty());
        EXPECT_FALSE(d.lastRetires.empty());
        std::string text = e.what();
        EXPECT_NE(text.find(d.instr), std::string::npos);
        EXPECT_NE(text.find("pipeline context"), std::string::npos);
    }
}

TEST(LockstepTest, ScalarStreamCorruptionCaughtToo)
{
    SocParams sp;
    sp.design = Design::d1b;
    sp.check.lockstep = true;
    Soc soc(std::move(sp));
    auto w = makeWorkload("vvadd", Scale::tiny);
    ASSERT_TRUE(w);
    w->init(soc.backing);
    ASSERT_TRUE(soc.armLockstep(true));
    soc.checker()->lockstep()->corruptRetireForTest(123, 0x1ull);

    bool done = false;
    soc.big->runProgram(w->scalarProgram(), w->fullRangeArgs(),
                        [&] { done = true; });
    try {
        soc.runUntil([&] { return done; });
        FAIL() << "corrupted retire was not caught";
    } catch (const CheckError &e) {
        ASSERT_TRUE(e.hasDivergence());
        EXPECT_EQ(e.divergence().seq, 123u);
    }
}

TEST(LockstepTest, InvariantViolationRaisesCheckError)
{
    // An impossible structural invariant stands in for a divergence:
    // both surface as CheckError and must become check_failed.
    SocParams sp;
    sp.design = Design::d1b;
    sp.check.invariants = true;
    sp.check.invariantPeriod = 1;
    Soc soc(std::move(sp));
    soc.invariantRegistry().add("test.fuse",
                                [] { return std::string("blown"); });
    auto w = makeWorkload("vvadd", Scale::tiny);
    w->init(soc.backing);
    bool done = false;
    soc.big->runProgram(w->scalarProgram(), w->fullRangeArgs(),
                        [&] { done = true; });
    try {
        soc.runUntil([&] { return done; });
        FAIL() << "invariant violation was not raised";
    } catch (const CheckError &e) {
        EXPECT_FALSE(e.hasDivergence());
        std::string text = e.what();
        EXPECT_NE(text.find("test.fuse"), std::string::npos);
        EXPECT_NE(text.find("blown"), std::string::npos);
    }
}

TEST(LockstepTest, TaskParallelDegradesToInvariantsOnly)
{
    RunOptions opts;
    opts.check.lockstep = true;
    opts.check.invariants = true;
    RunResult r = runWorkload(Design::d1b4VL, "bfs", Scale::tiny, opts);
    ASSERT_EQ(r.status, RunStatus::ok) << r.message;
    // No stream armed, so no retire compares...
    EXPECT_EQ(r.stat("check.retires"), 0u);
    // ...but invariant sweeps still ran, and the degradation was
    // announced in the captured log.
    EXPECT_GT(r.stat("check.sweeps"), 0u);
    EXPECT_NE(r.log.find("structural invariants only"),
              std::string::npos);
}

// --------------------------------------------- retry-budget exhaustion

RunOptions
lethalVmuDropOptions()
{
    RunOptions opts;
    opts.faults.enabled = true;
    opts.faults.vmuDropProb = 1.0;   // every response dropped
    opts.faults.vmuMaxRetries = 1;
    opts.faults.vmuRetryDelay = 16;
    opts.watchdogIntervalNs = 10000;
    opts.check.invariants = true;
    return opts;
}

TEST(ForensicsTest, RetryExhaustionDeadlockNamesInjectionPoint)
{
    RunResult r = runWorkload(Design::d1b4VL, "vvadd", Scale::tiny,
                              lethalVmuDropOptions());
    ASSERT_EQ(r.status, RunStatus::deadlock) << r.message;
    // The diagnostic names the lost response: which VMSU, which line,
    // after how many attempts.
    EXPECT_NE(r.message.find("LOST"), std::string::npos) << r.message;
    EXPECT_NE(r.message.find("attempts"), std::string::npos);
    EXPECT_NE(r.message.find("vmsu"), std::string::npos);
    EXPECT_GT(r.stat("faults.vmuDrop"), 0u);
    // Forensics capture populated the heartbeat table.
    EXPECT_FALSE(r.heartbeats.empty());
}

TEST(ForensicsTest, ReportRoundTripsThroughReplayToSameStatus)
{
    std::string path = tempPath("bvl_forensics_roundtrip.json");
    RunOptions opts = lethalVmuDropOptions();
    opts.check.forensicsPath = path;

    RunResult r = runWorkload(Design::d1b4VL, "vvadd", Scale::tiny,
                              opts);
    ASSERT_EQ(r.status, RunStatus::deadlock) << r.message;

    // The report is valid JSON with the documented schema fields.
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << "no report at " << path;
    std::ostringstream text;
    text << in.rdbuf();
    Json doc = Json::parse(text.str());
    EXPECT_EQ(doc["schema"].asString(), "bvl-failure-report-v1");
    EXPECT_EQ(doc["status"].asString(), "deadlock");
    EXPECT_EQ(doc["workload"].asString(), "vvadd");
    EXPECT_GT(doc["heartbeats"].size(), 0u);
    EXPECT_NE(doc["message"].asString().find("LOST"),
              std::string::npos);

    // Replaying the embedded recipe reproduces the identical status.
    ReplayRecipe recipe = loadReplayRecipe(path);
    EXPECT_EQ(recipe.workload, "vvadd");
    EXPECT_EQ(recipe.design, Design::d1b4VL);
    RunResult replay = runReplay(recipe);
    EXPECT_EQ(replay.status, r.status);
    EXPECT_EQ(replay.ns, r.ns);
    std::remove(path.c_str());
}

TEST(ForensicsTest, CheckFailedRunsProduceDivergenceInReport)
{
    std::string path = tempPath("bvl_forensics_divergence.json");
    // A lethal plan plus lockstep: the run fails (deadlock), and the
    // report must embed the replay recipe with checker flags intact.
    RunOptions opts = lethalVmuDropOptions();
    opts.check.lockstep = true;
    opts.check.forensicsPath = path;
    RunResult r = runWorkload(Design::d1b4VL, "vvadd", Scale::tiny,
                              opts);
    ASSERT_NE(r.status, RunStatus::ok);

    ReplayRecipe recipe = loadReplayRecipe(path);
    EXPECT_TRUE(recipe.options.check.lockstep);
    EXPECT_TRUE(recipe.options.check.invariants);
    EXPECT_EQ(recipe.options.faults.vmuMaxRetries, 1u);
    std::remove(path.c_str());
}

// ------------------------------------------------------------ minimizer

ReplayRecipe
twentyInjectionRecipe()
{
    ReplayRecipe rec;
    rec.design = Design::d1b4VL;
    rec.workload = "vvadd";
    rec.scale = Scale::tiny;
    rec.options.watchdogIntervalNs = 10000;
    rec.options.faults.enabled = true;
    rec.options.faults.vmuMaxRetries = 0;
    // 19 harmless stalls and one unrecoverable drop, buried at #13.
    for (unsigned i = 0; i < 20; ++i) {
        if (i == 13)
            rec.options.faults.script.push_back(
                {0, FaultKind::vmuDrop, 0});
        else
            rec.options.faults.script.push_back(
                {Tick(1000) * i, FaultKind::vcuStall, 5});
    }
    return rec;
}

TEST(MinimizeTest, ShrinksTwentyInjectionsToTheFatalOne)
{
    MinimizeOutcome out = minimizeFaultPlan(twentyInjectionRecipe());
    EXPECT_EQ(out.target, RunStatus::deadlock);
    ASSERT_EQ(out.keptIndices.size(), 1u);
    EXPECT_EQ(out.keptIndices[0], 13u);
    ASSERT_EQ(out.minimal.options.faults.script.size(), 1u);
    EXPECT_EQ(out.minimal.options.faults.script[0].kind,
              FaultKind::vmuDrop);
    EXPECT_TRUE(out.oneMinimal);

    // The minimal plan still fails with the target status...
    RunResult again = runReplay(out.minimal);
    EXPECT_EQ(again.status, out.target);
    // ...and an empty plan passes (1-minimality spot check).
    ReplayRecipe clean = out.minimal;
    clean.options.faults.script.clear();
    EXPECT_EQ(runReplay(clean).status, RunStatus::ok);
}

TEST(MinimizeTest, DeterministicAcrossRerunsAndThreadCounts)
{
    MinimizeOptions serial;
    serial.jobs = 1;
    MinimizeOptions parallel;
    parallel.jobs = 4;
    MinimizeOutcome a = minimizeFaultPlan(twentyInjectionRecipe(),
                                          serial);
    MinimizeOutcome b = minimizeFaultPlan(twentyInjectionRecipe(),
                                          parallel);
    EXPECT_EQ(a.keptIndices, b.keptIndices);
    EXPECT_EQ(a.oracleRuns, b.oracleRuns);
    EXPECT_EQ(a.target, b.target);
    EXPECT_EQ(a.oneMinimal, b.oneMinimal);
}

TEST(MinimizeTest, PassingPlanIsRejected)
{
    ReplayRecipe rec;
    rec.design = Design::d1b;
    rec.workload = "vvadd";
    rec.scale = Scale::tiny;
    EXPECT_THROW(minimizeFaultPlan(rec), SimFatalError);
}

} // namespace
} // namespace bvl
