/**
 * @file
 * Tests for the simulation hardening layer: progress watchdog,
 * deterministic fault injection and recoverable run outcomes.
 */

#include <gtest/gtest.h>

#include "sim/fault.hh"
#include "sim/watchdog.hh"
#include "soc/run_driver.hh"

namespace bvl
{
namespace
{

// ---------------------------------------------------------------- unit

TEST(WatchdogTest, FiresOnStuckSource)
{
    EventQueue eq;
    Watchdog wd(eq, 1000);

    std::uint64_t work = 0;
    wd.addSource("stuck", [&] { return work; },
                 [] { return std::string("3 requests in flight"); });

    // A self-rescheduling ticker keeps simulated time moving while the
    // watched counter stays flat, as a livelocked component would.
    std::function<void()> ticker = [&] { eq.schedule(100, ticker); };
    eq.schedule(100, ticker);

    wd.arm();
    EXPECT_THROW(eq.run(100000), DeadlockError);

    // The diagnostic names the component and carries its detail.
    wd.disarm();
    std::string diag = wd.report();
    EXPECT_NE(diag.find("stuck"), std::string::npos);
    EXPECT_NE(diag.find("3 requests in flight"), std::string::npos);
    EXPECT_NE(diag.find("pending events"), std::string::npos);
}

TEST(WatchdogTest, SilentWhileProgressAdvances)
{
    EventQueue eq;
    Watchdog wd(eq, 1000);

    std::uint64_t work = 0;
    wd.addSource("busy", [&] { return work; });

    std::function<void()> ticker = [&] {
        ++work;   // every 100 ticks: well inside the 1000-tick window
        eq.schedule(100, ticker);
    };
    eq.schedule(100, ticker);

    wd.arm();
    EXPECT_NO_THROW(eq.run(50000));
    EXPECT_GT(wd.checksRun(), 10u);
    wd.disarm();
}

TEST(WatchdogTest, DisarmedWatchdogNeverFires)
{
    EventQueue eq;
    Watchdog wd(eq, 1000);
    wd.addSource("stuck", [] { return std::uint64_t(0); });

    std::function<void()> ticker = [&] { eq.schedule(100, ticker); };
    eq.schedule(100, ticker);

    EXPECT_NO_THROW(eq.run(20000));
    EXPECT_EQ(wd.checksRun(), 0u);
}

TEST(FaultTest, DisabledSpecInjectsNothing)
{
    StatGroup stats;
    FaultSpec spec;   // enabled = false
    FaultInjector inj(spec, stats);
    EXPECT_FALSE(inj.enabled());
    EXPECT_EQ(inj.memResponseDelay(1000), 0u);
    EXPECT_EQ(inj.cacheResponseDelay(1000), 0u);
    EXPECT_EQ(inj.vcuStall(1000), 0u);
    EXPECT_FALSE(inj.dropVmuResponse(1000));
}

TEST(FaultTest, ScriptedFaultFiresExactlyOnce)
{
    StatGroup stats;
    FaultSpec spec;
    spec.enabled = true;
    spec.script.push_back({5000, FaultKind::vcuStall, 77});
    FaultInjector inj(spec, stats);

    EXPECT_EQ(inj.vcuStall(4999), 0u);     // before the trigger tick
    EXPECT_EQ(inj.vcuStall(5000), 77u);    // fires
    EXPECT_EQ(inj.vcuStall(5001), 0u);     // one-shot
    EXPECT_EQ(stats.value("faults.vcuStall.scripted"), 1u);
}

// --------------------------------------------------------- integration

RunResult
runVvadd(Design d, const RunOptions &opts)
{
    return runWorkload(d, "vvadd", Scale::tiny, opts);
}

TEST(RunStatusTest, CleanRunReportsOk)
{
    RunResult r = runVvadd(Design::d1b4VL, {});
    EXPECT_EQ(r.status, RunStatus::ok);
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(r.finished);
    EXPECT_TRUE(r.verified);
    EXPECT_TRUE(r.message.empty());
}

TEST(RunStatusTest, TimeLimitIsDistinguishedFromCompletion)
{
    RunOptions opts;
    opts.limitNs = 50.0;   // far too short for even the tiny scale
    RunResult r = runVvadd(Design::d1b, opts);
    EXPECT_EQ(r.status, RunStatus::time_limit);
    EXPECT_FALSE(r.finished);
    EXPECT_FALSE(r.ok());
    EXPECT_NE(r.message.find("limit"), std::string::npos);
}

TEST(RunStatusTest, WatchdogDoesNotPerturbTiming)
{
    RunOptions on;
    on.watchdog = true;
    // Aggressively frequent checks — but the window must still exceed
    // legitimate progress gaps like the 500-cycle mode switch.
    on.watchdogIntervalNs = 2000.0;
    RunOptions off;
    off.watchdog = false;

    RunResult a = runVvadd(Design::d1b4VL, on);
    RunResult b = runVvadd(Design::d1b4VL, off);
    ASSERT_EQ(a.status, RunStatus::ok);
    ASSERT_EQ(b.status, RunStatus::ok);
    EXPECT_EQ(a.ns, b.ns);
    EXPECT_EQ(a.stats, b.stats);
}

TEST(RunStatusTest, ScriptedVcuStallIsReportedAsDeadlock)
{
    RunOptions opts;
    opts.watchdogIntervalNs = 2000.0;
    opts.faults.enabled = true;
    // Stall the VCU command bus effectively forever; with no retries
    // the engine can never broadcast another micro-op.
    opts.faults.script.push_back(
        {0, FaultKind::vcuStall, Cycles(2'000'000'000)});

    RunResult r = runVvadd(Design::d1b4VL, opts);
    EXPECT_EQ(r.status, RunStatus::deadlock);
    EXPECT_FALSE(r.finished);
    // The diagnostic lists per-component progress, including the big
    // core's retire stage and the engine itself.
    EXPECT_NE(r.message.find("watchdog diagnostic"), std::string::npos);
    EXPECT_NE(r.message.find("big.retire"), std::string::npos);
    EXPECT_NE(r.message.find("vlittle"), std::string::npos);
}

TEST(FaultTest, EnabledButQuietPlanMatchesBaselineExactly)
{
    RunOptions faulty;
    faulty.faults.enabled = true;   // injector constructed, all probs 0

    RunResult base = runVvadd(Design::d1b4VL, {});
    RunResult quiet = runVvadd(Design::d1b4VL, faulty);
    ASSERT_EQ(base.status, RunStatus::ok);
    ASSERT_EQ(quiet.status, RunStatus::ok);
    EXPECT_EQ(base.ns, quiet.ns);
    EXPECT_EQ(base.stats, quiet.stats);
}

RunOptions
noisyPlan(std::uint64_t seed)
{
    RunOptions opts;
    opts.faults.enabled = true;
    opts.faults.seed = seed;
    opts.faults.memDelayProb = 0.10;
    opts.faults.cacheDelayProb = 0.05;
    opts.faults.vcuStallProb = 0.02;
    opts.faults.vcuStallCycles = 20;
    opts.faults.vmuDropProb = 0.02;
    return opts;
}

TEST(FaultTest, SeededPlanReplaysBitIdentically)
{
    RunResult a = runVvadd(Design::d1b4VL, noisyPlan(42));
    RunResult b = runVvadd(Design::d1b4VL, noisyPlan(42));
    ASSERT_EQ(a.status, RunStatus::ok) << a.message;
    EXPECT_EQ(a.status, b.status);
    EXPECT_EQ(a.ns, b.ns);
    EXPECT_EQ(a.stats, b.stats);

    // The plan actually injected something.
    std::uint64_t injected = 0;
    for (const auto &kv : a.stats)
        if (kv.first.rfind("faults.", 0) == 0)
            injected += kv.second;
    EXPECT_GT(injected, 0u);

    // A different seed produces a different execution.
    RunResult c = runVvadd(Design::d1b4VL, noisyPlan(43));
    ASSERT_EQ(c.status, RunStatus::ok) << c.message;
    EXPECT_NE(a.ns, c.ns);
}

TEST(FaultTest, TransientFaultsAreAbsorbedByRetries)
{
    RunOptions opts = noisyPlan(7);
    RunResult r = runVvadd(Design::d1b4VL, opts);
    EXPECT_EQ(r.status, RunStatus::ok) << r.message;
    EXPECT_TRUE(r.verified);
    // Faults were stretched/dropped yet the run still completed; the
    // result is slower than the clean baseline.
    RunResult clean = runVvadd(Design::d1b4VL, {});
    EXPECT_GT(r.ns, clean.ns);
}

} // namespace
} // namespace bvl
