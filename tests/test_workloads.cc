/**
 * @file
 * Workload-suite tests.
 *
 * The heart of the reproduction's validation: every workload runs
 * functionally correctly under full timing simulation on every
 * design (parameterized over the 19-workload x 7-design matrix at
 * tiny scale), plus host-reference checks of the shared polynomial
 * approximations and graph substrate.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "soc/run_driver.hh"
#include "workloads/graph.hh"
#include "workloads/progutil.hh"

namespace bvl
{
namespace
{

// ------------------------------------------------------------------
// Full matrix: workload x design, tiny scale, verified.
// ------------------------------------------------------------------

using MatrixParam = std::tuple<std::string, Design>;

class WorkloadMatrixTest
    : public ::testing::TestWithParam<MatrixParam>
{};

TEST_P(WorkloadMatrixTest, RunsAndVerifies)
{
    const auto &[name, design] = GetParam();
    auto w = makeWorkload(name, Scale::tiny);
    ASSERT_NE(w, nullptr);
    RunOptions opts;
    opts.limitNs = 5e7;
    auto r = runWorkload(design, *w, opts);
    EXPECT_TRUE(r.finished) << name << " timed out on "
                            << designName(design);
    EXPECT_TRUE(r.verified) << name << " wrong results on "
                            << designName(design);
    EXPECT_GT(r.ns, 0.0);
}

std::vector<MatrixParam>
matrix()
{
    std::vector<MatrixParam> params;
    for (const auto &name : allWorkloadNames())
        for (Design d : {Design::d1L, Design::d1b, Design::d1bIV,
                         Design::d1b4L, Design::d1bIV4L, Design::d1bDV,
                         Design::d1b4VL})
            params.emplace_back(name, d);
    return params;
}

std::string
matrixName(const ::testing::TestParamInfo<MatrixParam> &info)
{
    std::string s = std::get<0>(info.param);
    s += "_";
    s += designName(std::get<1>(info.param));
    for (auto &c : s)
        if (!isalnum(static_cast<unsigned char>(c)))
            c = '_';
    return s;
}

INSTANTIATE_TEST_SUITE_P(AllPairs, WorkloadMatrixTest,
                         ::testing::ValuesIn(matrix()), matrixName);

// ------------------------------------------------------------------
// Stat-registry parity after a full run: every counter is incremented
// through an interned StatHandle, and must still be visible under its
// dotted name with self-consistent totals.
// ------------------------------------------------------------------

TEST(StatParityTest, HandleCountersVisibleByNameAfterRun)
{
    auto r = runWorkload(Design::d1b4L, "vvadd", Scale::tiny);
    ASSERT_TRUE(r.ok());
    const auto &s = r.stats;
    auto val = [&](const std::string &n) -> std::uint64_t {
        auto it = s.find(n);
        return it == s.end() ? 0 : it->second;
    };

    // The figure extractors and the raw snapshot read the same map.
    EXPECT_EQ(r.bigFetched, val("big.fetched"));
    EXPECT_EQ(r.ifetchReqs, val("sys.ifetchReqs"));
    EXPECT_EQ(r.dataReqs, val("sys.dataReqs"));

    // The run did real work and the counters saw it.
    EXPECT_GT(val("big.retired"), 0u);
    EXPECT_GT(val("l2.accesses"), 0u);
    EXPECT_GT(val("dram.reads"), 0u);

    // Every cache access resolves as exactly one hit or miss.
    for (const char *c : {"big.l1i", "big.l1d", "l2"})
        EXPECT_EQ(val(std::string(c) + ".accesses"),
                  val(std::string(c) + ".hits") +
                      val(std::string(c) + ".misses"))
            << c;

    // Every little-core cycle is accounted to exactly one stall cause.
    for (int i = 0; i < 4; ++i) {
        std::string p = "little" + std::to_string(i) + ".";
        std::uint64_t stalls = 0;
        for (const auto &kv : s)
            if (kv.first.rfind(p + "stall.", 0) == 0)
                stalls += kv.second;
        EXPECT_GT(val(p + "cycles"), 0u) << p;
        EXPECT_EQ(val(p + "cycles"), stalls) << p;
    }
}

// ------------------------------------------------------------------
// Cross-design performance-shape properties (tiny scale).
// ------------------------------------------------------------------

TEST(WorkloadShapeTest, VectorEnginesBeatScalarBigOnSaxpy)
{
    RunOptions opts;
    double t1b = runWorkload(Design::d1b, "saxpy", Scale::tiny, opts).ns;
    double tdv =
        runWorkload(Design::d1bDV, "saxpy", Scale::tiny, opts).ns;
    EXPECT_LT(tdv, t1b);
}

TEST(WorkloadShapeTest, MultiCoreBeatsSingleLittleOnGraphs)
{
    double t1 = runWorkload(Design::d1L, "pagerank", Scale::tiny).ns;
    double t5 = runWorkload(Design::d1b4L, "pagerank", Scale::tiny).ns;
    EXPECT_LT(t5, t1);
}

TEST(WorkloadShapeTest, TaskParallelIdenticalOn4VLAnd4L)
{
    // In scalar mode big.VLITTLE behaves exactly like big.LITTLE
    // (paper Section V-A): same time to the cycle.
    double t4l = runWorkload(Design::d1b4L, "bfs", Scale::tiny).ns;
    double t4vl = runWorkload(Design::d1b4VL, "bfs", Scale::tiny).ns;
    EXPECT_DOUBLE_EQ(t4l, t4vl);
}

TEST(WorkloadShapeTest, LittleStallBreakdownAccountsAllCycles)
{
    auto r = runWorkload(Design::d1b4VL, "saxpy", Scale::tiny);
    for (unsigned l = 0; l < 4; ++l) {
        std::string pre = "little" + std::to_string(l) + ".";
        std::uint64_t sum = 0;
        for (auto c : {"busy", "simd", "raw_mem", "raw_llfu", "struct",
                       "xelem", "misc"})
            sum += r.stat(pre + "stall." + c);
        EXPECT_EQ(sum, r.stat(pre + "cycles")) << "lane " << l;
    }
}

TEST(WorkloadShapeTest, LongerVectorsFetchFewerInstructions)
{
    auto iv = runWorkload(Design::d1bIV, "vvadd", Scale::tiny);
    auto dv = runWorkload(Design::d1bDV, "vvadd", Scale::tiny);
    EXPECT_LT(dv.bigFetched * 2, iv.bigFetched);
}

TEST(WorkloadShapeTest, BoostingBigCoreHelpsSwMoreThanVvadd)
{
    // Paper Section VII: sw's scalar per-diagonal control runs on the
    // big core, so boosting the big core speeds sw up noticeably; for
    // dense kernels the engine does the work and the big core's speed
    // barely matters.
    auto gainFromBigBoost = [](const char *name) {
        RunOptions slow, fast;
        slow.bigGhz = 0.8;
        fast.bigGhz = 1.4;
        double t_slow =
            runWorkload(Design::d1b4VL, name, Scale::small, slow).ns;
        double t_fast =
            runWorkload(Design::d1b4VL, name, Scale::small, fast).ns;
        return t_slow / t_fast;
    };
    double swGain = gainFromBigBoost("sw");
    double vvGain = gainFromBigBoost("vvadd");
    EXPECT_GT(swGain, 1.05);
    EXPECT_GT(swGain, vvGain);
}

// ------------------------------------------------------------------
// Shared helpers: polynomials and graph substrate.
// ------------------------------------------------------------------

TEST(ProgutilTest, PolyExpTracksExpInRange)
{
    for (double x = -2.0; x <= 1.5; x += 0.25) {
        float approx = hostPolyExp(static_cast<float>(x));
        float exact = std::exp(static_cast<float>(x));
        EXPECT_NEAR(approx, exact, 0.25f + 0.1f * std::fabs(exact))
            << "x=" << x;
    }
}

TEST(ProgutilTest, PolyCndIsSigmoidShaped)
{
    // The degree-4 exp polynomial is only accurate for |arg| <~ 2,
    // i.e. |x| <~ 1.2 for the CND; the workloads keep their inputs in
    // that range (at-the-money options, normalized activations).
    EXPECT_NEAR(hostPolyCnd(0.0f), 0.5f, 1e-3f);
    EXPECT_GT(hostPolyCnd(1.0f), 0.75f);
    EXPECT_LT(hostPolyCnd(-1.0f), 0.25f);
    float prev = hostPolyCnd(-1.0f);
    for (float x = -0.9f; x <= 0.9f; x += 0.1f) {
        float cur = hostPolyCnd(x);
        EXPECT_GE(cur, prev) << "x=" << x;
        prev = cur;
    }
}

TEST(GraphTest, CsrIsConsistent)
{
    auto g = HostGraph::random(500, 6);
    EXPECT_EQ(g.n, 500u);
    EXPECT_EQ(g.outOffs.size(), 501u);
    EXPECT_EQ(g.outOffs[500], g.outTgts.size());
    EXPECT_EQ(g.inOffs[500], g.inTgts.size());
    EXPECT_EQ(g.outTgts.size(), g.inTgts.size());
    // transpose preserves edge multiset
    std::uint64_t outSum = 0, inSum = 0;
    for (unsigned v = 0; v < g.n; ++v) {
        for (unsigned e = g.outOffs[v]; e < g.outOffs[v + 1]; ++e)
            outSum += std::uint64_t(v) * 1000003 + g.outTgts[e];
        for (unsigned e = g.inOffs[v]; e < g.inOffs[v + 1]; ++e)
            inSum += std::uint64_t(g.inTgts[e]) * 1000003 + v;
    }
    EXPECT_EQ(outSum, inSum);
}

TEST(GraphTest, AdjacencyListsAreSorted)
{
    auto g = HostGraph::random(300, 8);
    for (unsigned v = 0; v < g.n; ++v)
        for (unsigned e = g.outOffs[v]; e + 1 < g.outOffs[v + 1]; ++e)
            EXPECT_LT(g.outTgts[e], g.outTgts[e + 1]);
}

TEST(GraphTest, BfsLevelsAreParentPlusOne)
{
    auto g = HostGraph::random(400, 8);
    auto level = g.bfsLevels(0);
    EXPECT_EQ(level[0], 0);
    for (unsigned u = 0; u < g.n; ++u) {
        if (level[u] < 0)
            continue;
        for (unsigned e = g.outOffs[u]; e < g.outOffs[u + 1]; ++e) {
            auto v = g.outTgts[e];
            ASSERT_GE(level[v], 0);
            EXPECT_LE(level[v], level[u] + 1);
        }
    }
}

TEST(GraphTest, MisIsIndependentAndMaximal)
{
    auto g = HostGraph::random(300, 6);
    auto [status, rounds] = g.mis();
    auto neighborInMis = [&](unsigned v) {
        for (unsigned e = g.inOffs[v]; e < g.inOffs[v + 1]; ++e)
            if (status[g.inTgts[e]] == 1)
                return true;
        for (unsigned e = g.outOffs[v]; e < g.outOffs[v + 1]; ++e)
            if (status[g.outTgts[e]] == 1)
                return true;
        return false;
    };
    for (unsigned v = 0; v < g.n; ++v) {
        ASSERT_NE(status[v], 0) << "undecided vertex after " << rounds;
        if (status[v] == 1)
            EXPECT_FALSE(neighborInMis(v)) << v;   // independence
        else
            EXPECT_TRUE(neighborInMis(v)) << v;    // maximality
    }
}

TEST(GraphTest, ComponentsLabelsAreFixpoint)
{
    auto g = HostGraph::random(300, 4);
    auto [labels, iters] = g.components();
    for (unsigned v = 0; v < g.n; ++v) {
        for (unsigned e = g.outOffs[v]; e < g.outOffs[v + 1]; ++e)
            EXPECT_EQ(labels[v], labels[g.outTgts[e]]);
    }
    EXPECT_GE(iters, 1u);
}

TEST(GraphTest, PagerankMassApproximatelyConserved)
{
    auto g = HostGraph::random(400, 8);
    auto rank = g.pagerank(5);
    double sum = 0;
    for (auto r : rank)
        sum += r;
    // Dangling-vertex leakage keeps this below 1, but it must stay a
    // sane distribution.
    EXPECT_GT(sum, 0.2);
    EXPECT_LT(sum, 1.2);
}

} // namespace
} // namespace bvl
