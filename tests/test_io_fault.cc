/**
 * @file
 * I/O fault injection and graceful degradation (DESIGN.md §17).
 *
 * Three layers:
 *
 *  - seam unit tests: plan parsing, writeFileAtomic's fault matrix
 *    (every sub-site × every eligible kind ends with no temp litter),
 *    stale-temp sweeping, and the bounded flock with holder-pid
 *    diagnostics;
 *  - degradation policy tests: each persistence component survives
 *    its designated failure the designated way (journal loses
 *    durability not the sweep, cache/farm stores disable themselves,
 *    forensics/trace failures never touch the RunStatus);
 *  - the in-process chaos harness: run a reference sweep that touches
 *    journal + cache + farm + checkpoint + forensics + trace,
 *    enumerate every injection site it reaches, then for every
 *    distinct site label re-run with (a) a deterministic failure and
 *    (b) a crash, asserting the results are identical to the
 *    fault-free run, nothing crashes the harness, no "*.tmp" litter
 *    survives, and crash runs recover on the same directories.
 *
 * IoFaultConcurrencyTest runs under ThreadSanitizer via the
 * "*Concurrency*" ctest label glob.
 */

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "sim/io/io_fault.hh"
#include "sim/io/sim_io.hh"
#include "sim/check/forensics.hh"
#include "soc/checkpoint.hh"
#include "soc/checkpoint_farm.hh"
#include "soc/run_driver.hh"
#include "soc/run_io.hh"
#include "sweep/service/job_hash.hh"
#include "sweep/service/result_cache.hh"
#include "sweep/service/service.hh"

namespace bvl
{
namespace
{

std::string
scratchDir(const char *tag)
{
    std::string dir = ::testing::TempDir() + "bvl_io_" + tag + "_" +
                      std::to_string(::getpid());
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

/** Every "*.tmp.*" file below @p dir (litter check). */
std::vector<std::string>
tempsUnder(const std::string &dir)
{
    std::vector<std::string> out;
    std::error_code ec;
    for (auto it = std::filesystem::recursive_directory_iterator(
             dir, ec);
         !ec && it != std::filesystem::recursive_directory_iterator();
         it.increment(ec)) {
        std::string name = it->path().filename().string();
        if (name.find(".tmp.") != std::string::npos)
            out.push_back(it->path().string());
    }
    return out;
}

/** RAII reset of the process-wide injector + farm + stop state. */
struct InjectorReset
{
    InjectorReset()
    {
        io::ioFaultReset();
        CheckpointFarm::resetForTest();
        SweepService::clearStop();
    }
    ~InjectorReset()
    {
        io::ioFaultReset();
        CheckpointFarm::resetForTest();
        SweepService::clearStop();
    }
};

// --- plan parsing ------------------------------------------------------

TEST(IoFaultPlanTest, SpecParsesIndexAndLabelEntries)
{
    auto plan = io::ioFaultPlanFromSpec(
        "enospc@12,crash@result_cache.store.rename,short@journal."
        "append.write");
    ASSERT_TRUE(plan.enabled);
    ASSERT_EQ(plan.script.size(), 3u);
    EXPECT_EQ(plan.script[0].site, 12);
    EXPECT_EQ(plan.script[0].kind, io::IoFaultKind::fail_enospc);
    EXPECT_EQ(plan.script[1].site, -1);
    EXPECT_EQ(plan.script[1].label, "result_cache.store.rename");
    EXPECT_EQ(plan.script[1].kind, io::IoFaultKind::crash);
    EXPECT_EQ(plan.script[2].kind, io::IoFaultKind::short_write);
}

TEST(IoFaultPlanTest, MalformedSpecIsFatal)
{
    EXPECT_THROW(io::ioFaultPlanFromSpec("enospc"), SimFatalError);
    EXPECT_THROW(io::ioFaultPlanFromSpec("bogus@3"), SimFatalError);
    EXPECT_THROW(io::ioFaultPlanFromSpec("@3"), SimFatalError);
    EXPECT_THROW(io::ioFaultPlanFromSpec("eio@"), SimFatalError);
}

TEST(IoFaultPlanTest, ScriptedFaultFiresOnceAtMatchingLabel)
{
    InjectorReset reset;
    std::string dir = scratchDir("fireonce");
    io::ioFaultInstall(io::ioFaultPlanFromSpec("eio@t.write"));

    io::SimFile f;
    ASSERT_TRUE(f.createTrunc("t.open", dir + "/a"));
    std::string err;
    EXPECT_FALSE(f.writeAll("t.write", "x", 1, &err));
    EXPECT_NE(err.find("injected eio"), std::string::npos) << err;
    // Same label again: the entry already fired.
    EXPECT_TRUE(f.writeAll("t.write", "x", 1, &err));
    EXPECT_EQ(io::ioFaultsFired(), 1u);
}

TEST(IoFaultPlanTest, IneligibleKindDegradesToEio)
{
    InjectorReset reset;
    std::string dir = scratchDir("inelig");
    // stale_lock makes no sense for a write; it must still fail the
    // site (as EIO) rather than silently doing nothing.
    io::ioFaultInstall(io::ioFaultPlanFromSpec("stale_lock@t.write"));
    io::SimFile f;
    ASSERT_TRUE(f.createTrunc("t.open", dir + "/a"));
    std::string err;
    EXPECT_FALSE(f.writeAll("t.write", "x", 1, &err));
    EXPECT_NE(err.find("Input/output"), std::string::npos) << err;
}

TEST(IoFaultPlanTest, ProbabilisticModeIsSeedDeterministic)
{
    std::string dir = scratchDir("prob");
    auto countFired = [&](std::uint64_t seed) {
        InjectorReset reset;
        io::IoFaultPlan plan;
        plan.enabled = true;
        plan.prob = 0.5;
        plan.seed = seed;
        io::ioFaultInstall(plan);
        for (int i = 0; i < 64; ++i) {
            try {
                io::writeFileAtomic("t.atomic",
                                    dir + "/f" + std::to_string(i),
                                    "x");
            } catch (const io::IoCrashError &) {
                // The kind pool includes crash; a clean unwind is the
                // correct behavior, and it counts as a fired fault.
            }
        }
        return io::ioFaultsFired();
    };
    std::uint64_t a = countFired(7);
    std::uint64_t b = countFired(7);
    std::uint64_t c = countFired(8);
    EXPECT_EQ(a, b);
    EXPECT_GT(a, 0u);
    // Different seeds fault at different sites; the *count* may
    // coincide, so just sanity-check the mode stays probabilistic.
    EXPECT_LT(c, 64u * 4u);
}

// --- the atomic-publish fault matrix -----------------------------------

TEST(IoFaultSeamTest, WriteFileAtomicSurvivesEveryStageFault)
{
    struct Case
    {
        const char *spec;
        bool tornDest;  ///< torn rename leaves a (truncated) dest
    };
    const Case cases[] = {
        {"eio@t.atomic.open", false},
        {"enospc@t.atomic.write", false},
        {"short@t.atomic.write", false},
        {"eio@t.atomic.fsync", false},
        {"enospc@t.atomic.fsync", false},
        {"torn@t.atomic.rename", true},
        {"eio@t.atomic.rename", false},
    };
    const std::string data(8192, 'q');
    for (const Case &c : cases) {
        InjectorReset reset;
        std::string dir = scratchDir("atomic");
        std::string path = dir + "/out.json";
        io::ioFaultInstall(io::ioFaultPlanFromSpec(c.spec));

        std::string err;
        EXPECT_FALSE(io::writeFileAtomic("t.atomic", path, data, &err))
            << c.spec;
        EXPECT_FALSE(err.empty()) << c.spec;
        EXPECT_TRUE(tempsUnder(dir).empty())
            << c.spec << " left temp litter";
        if (c.tornDest) {
            // The torn destination exists but must never carry the
            // full payload — that is the corruption detectors' job.
            std::ifstream in(path, std::ios::binary);
            ASSERT_TRUE(in.good()) << c.spec;
            std::string got((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
            EXPECT_LT(got.size(), data.size()) << c.spec;
        } else {
            EXPECT_FALSE(std::filesystem::exists(path)) << c.spec;
        }

        // And with the plan spent, the publish succeeds exactly.
        EXPECT_TRUE(io::writeFileAtomic("t.atomic", path, data, &err))
            << err;
        std::ifstream in(path, std::ios::binary);
        std::string got((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
        EXPECT_EQ(got, data);
        EXPECT_TRUE(tempsUnder(dir).empty());
    }
}

TEST(IoFaultSeamTest, CrashInThrowModeUnwindsAndCleansTemp)
{
    InjectorReset reset;
    std::string dir = scratchDir("crashthrow");
    io::IoFaultPlan plan = io::ioFaultPlanFromSpec("crash@t.atomic.fsync");
    plan.crashExits = false;
    io::ioFaultInstall(plan);
    EXPECT_THROW(io::writeFileAtomic("t.atomic", dir + "/f", "data"),
                 io::IoCrashError);
    EXPECT_TRUE(tempsUnder(dir).empty());
    EXPECT_FALSE(std::filesystem::exists(dir + "/f"));
}

TEST(IoFaultSeamTest, ReadFileDistinguishesMissingFromBroken)
{
    InjectorReset reset;
    std::string dir = scratchDir("readfile");
    std::string out;
    bool missing = false;
    EXPECT_FALSE(io::readFile("t.read", dir + "/absent", &out,
                              &missing));
    EXPECT_TRUE(missing);

    ASSERT_TRUE(io::writeFileAtomic("t.atomic", dir + "/present",
                                    "hello"));
    io::ioFaultInstall(io::ioFaultPlanFromSpec("eio@t.read"));
    std::string err;
    EXPECT_FALSE(io::readFile("t.read", dir + "/present", &out,
                              &missing, &err));
    EXPECT_FALSE(missing);
    EXPECT_NE(err.find("injected eio"), std::string::npos);
    // Plan spent: reads work and round-trip the bytes.
    EXPECT_TRUE(io::readFile("t.read", dir + "/present", &out,
                             &missing, &err)) << err;
    EXPECT_EQ(out, "hello");
}

// --- stale-temp sweeping -----------------------------------------------

TEST(IoFaultSeamTest, SweepStaleTempsKnowsDeadFromAlive)
{
    InjectorReset reset;
    std::string dir = scratchDir("staletmp");
    std::filesystem::create_directories(dir + "/ab");
    // Owner pid 999999999 can't exist (beyond pid_max defaults).
    std::string dead = dir + "/ab/x.json.tmp.999999999.beef";
    std::string live = dir + "/ab/y.json.tmp." +
                       std::to_string(::getpid()) + ".beef";
    std::ofstream(dead) << "partial";
    std::ofstream(live) << "partial";

    EXPECT_EQ(io::sweepStaleTemps("t.sweep", dir,
                                  /*selfStale=*/false), 1u);
    EXPECT_FALSE(std::filesystem::exists(dead));
    EXPECT_TRUE(std::filesystem::exists(live));

    // At startup nothing of ours can be mid-publish: selfStale
    // reclaims our own leftovers too.
    EXPECT_EQ(io::sweepStaleTemps("t.sweep", dir,
                                  /*selfStale=*/true), 1u);
    EXPECT_FALSE(std::filesystem::exists(live));
    EXPECT_EQ(io::ioTempsCleaned(), 2u);
}

TEST(IoFaultSeamTest, SweepTempsForTargetsOneEntryOnly)
{
    InjectorReset reset;
    std::string dir = scratchDir("sweepfor");
    std::string entry = dir + "/e.bvl";
    std::ofstream(entry + ".tmp.1.a") << "x";
    std::ofstream(entry + ".tmp.2.b") << "x";
    std::ofstream(dir + "/other.bvl.tmp.1.a") << "x";
    EXPECT_EQ(io::sweepTempsFor("t.sweepfor", entry), 2u);
    EXPECT_TRUE(std::filesystem::exists(dir + "/other.bvl.tmp.1.a"));
}

// --- bounded flock -----------------------------------------------------

TEST(IoFaultSeamTest, LockTimeoutNamesHolderPid)
{
    InjectorReset reset;
    std::string dir = scratchDir("flock");
    std::string lock = dir + "/e.bvl.lock";

    int holder = io::lockExclusive("t.flock", lock, 1000);
    ASSERT_GE(holder, 0);

    std::string diag;
    int loser = io::lockExclusive("t.flock", lock, 60, &diag);
    EXPECT_LT(loser, 0);
    EXPECT_NE(diag.find(lock), std::string::npos) << diag;
    EXPECT_NE(diag.find(std::to_string(::getpid())),
              std::string::npos)
        << diag << " should name the holder pid";

    io::unlockAndClose(holder);
    int winner = io::lockExclusive("t.flock", lock, 1000, &diag);
    EXPECT_GE(winner, 0) << diag;
    io::unlockAndClose(winner);
}

TEST(IoFaultSeamTest, TrulyStaleLockFileAcquiresInstantly)
{
    InjectorReset reset;
    std::string dir = scratchDir("stalelock");
    std::string lock = dir + "/e.bvl.lock";
    // A lock *file* left by a dead process carries no kernel flock:
    // acquisition must not wait on its stale pid content.
    std::ofstream(lock) << "999999999\n";
    auto start = std::chrono::steady_clock::now();
    std::string diag;
    int fd = io::lockExclusive("t.flock", lock, 60000, &diag);
    std::chrono::duration<double> took =
        std::chrono::steady_clock::now() - start;
    EXPECT_GE(fd, 0) << diag;
    EXPECT_LT(took.count(), 5.0);
    io::unlockAndClose(fd);
}

TEST(IoFaultSeamTest, InjectedStaleLockTimesOutWithDiag)
{
    InjectorReset reset;
    std::string dir = scratchDir("injstale");
    io::ioFaultInstall(io::ioFaultPlanFromSpec("stale_lock@t.flock"));
    std::string diag;
    int fd = io::lockExclusive("t.flock", dir + "/e.lock", 60000,
                               &diag);
    EXPECT_LT(fd, 0);
    EXPECT_NE(diag.find("injected stale_lock"), std::string::npos)
        << diag;
}

TEST(IoFaultSeamTest, FarmClaimFallsBackAfterLockTimeout)
{
    InjectorReset reset;
    std::string dir = scratchDir("claim");
    std::string entry = dir + "/ab/e.bvl";
    std::filesystem::create_directories(dir + "/ab");

    int holder = io::lockExclusive("t.flock", entry + ".lock", 1000);
    ASSERT_GE(holder, 0);
    {
        CheckpointFarm::Claim claim(entry, 60);
        EXPECT_FALSE(claim.held());
    }
    io::unlockAndClose(holder);
    {
        // Holder gone: the claim acquires and reclaims entry temps.
        std::ofstream(entry + ".tmp.999999999") << "orphan";
        CheckpointFarm::Claim claim(entry, 1000);
        EXPECT_TRUE(claim.held());
        EXPECT_FALSE(
            std::filesystem::exists(entry + ".tmp.999999999"));
    }
}

// --- per-component degradation policy ----------------------------------

SweepJob
vvaddJob(Design d = Design::d1b4VL)
{
    return {d, "vvadd", Scale::tiny, {}};
}

TEST(IoFaultDegradationTest, JournalAppendFailureDegradesNotAborts)
{
    InjectorReset reset;
    std::string dir = scratchDir("jdeg");

    SweepServiceOptions o;
    o.jobs = 1;
    o.maxAttempts = 1;
    o.journalPath = dir + "/sweep.jsonl";
    io::ioFaultInstall(
        io::ioFaultPlanFromSpec("enospc@journal.append.fsync"));

    SweepService svc(o);
    RunResult a = svc.submit(vvaddJob(Design::d1b)).get();
    RunResult b = svc.submit(vvaddJob(Design::d1b4VL)).get();
    EXPECT_TRUE(a.ok()) << a.message;
    EXPECT_TRUE(b.ok()) << b.message;

    auto s = svc.summary();
    EXPECT_TRUE(s.journalDegraded);
    EXPECT_EQ(s.simulated, 2u);
    EXPECT_NE(svc.summaryLine().find("journal_degraded=1"),
              std::string::npos);
}

TEST(IoFaultDegradationTest, CacheStoreFailureDisablesStoreOnce)
{
    InjectorReset reset;
    std::string dir = scratchDir("cdeg");

    SweepServiceOptions o;
    o.jobs = 1;
    o.maxAttempts = 1;
    o.cacheDir = dir + "/cache";
    // The previously warn-only-and-untested short-write path, driven
    // deterministically through the seam.
    io::ioFaultInstall(
        io::ioFaultPlanFromSpec("short@result_cache.store.write"));

    SweepService svc(o);
    RunResult a = svc.submit(vvaddJob(Design::d1b)).get();
    EXPECT_TRUE(a.ok());
    auto s = svc.summary();
    EXPECT_TRUE(s.cacheDegraded);
    EXPECT_NE(svc.summaryLine().find("cache_degraded=1"),
              std::string::npos);
    EXPECT_TRUE(tempsUnder(dir).empty());
}

TEST(IoFaultDegradationTest, CacheLookupFailureJustResimulates)
{
    InjectorReset reset;
    std::string dir = scratchDir("clook");

    RunResult warm;
    {
        SweepServiceOptions o;
        o.jobs = 1;
        o.cacheDir = dir + "/cache";
        SweepService svc(o);
        warm = svc.submit(vvaddJob(Design::d1b)).get();
        ASSERT_TRUE(warm.ok());
    }
    io::ioFaultInstall(
        io::ioFaultPlanFromSpec("eio@result_cache.lookup.read"));
    {
        SweepServiceOptions o;
        o.jobs = 1;
        o.cacheDir = dir + "/cache";
        SweepService svc(o);
        RunResult again = svc.submit(vvaddJob(Design::d1b)).get();
        EXPECT_TRUE(again.ok());
        auto s = svc.summary();
        EXPECT_EQ(s.cacheHits, 0u);
        EXPECT_EQ(s.simulated, 1u);
        // The unreadable entry was NOT quarantined (transient error,
        // not corruption) and serves the next lookup fine.
        warm.log.clear();
        again.log.clear();
        EXPECT_EQ(runResultToJson(warm).dump(0),
                  runResultToJson(again).dump(0));
    }
}

TEST(IoFaultDegradationTest, ForensicsWriteFailureKeepsRunStatus)
{
    InjectorReset reset;
    std::string dir = scratchDir("fdeg");
    io::ioFaultInstall(
        io::ioFaultPlanFromSpec("short@forensics.report.write"));

    RunOptions o;
    o.check.forensicsPath = dir + "/report.json";
    // A starved simulated-time budget is the cheapest failing run
    // that wants a report.
    o.limitNs = 1.0;
    RunResult r = runWorkload(Design::d1b, "vvadd", Scale::tiny, o);
    EXPECT_EQ(r.status, RunStatus::time_limit);
    EXPECT_FALSE(std::filesystem::exists(dir + "/report.json"));
    EXPECT_TRUE(tempsUnder(dir).empty());
    EXPECT_NE(r.log.find("forensics"), std::string::npos) << r.log;
}

TEST(IoFaultDegradationTest, TraceFailuresNeverPerturbTheRun)
{
    InjectorReset reset;
    std::string dir = scratchDir("tdeg");

    RunOptions plain;
    RunResult ref = runWorkload(Design::d1b, "vvadd", Scale::tiny,
                                plain);
    ASSERT_TRUE(ref.ok());

    for (const char *spec : {"eio@trace.events.open",
                             "enospc@trace.events.write",
                             "short@trace.samples.write"}) {
        io::ioFaultReset();
        io::ioFaultInstall(io::ioFaultPlanFromSpec(spec));
        RunOptions o;
        o.trace.path = dir + "/events.json";
        o.trace.samplePath = dir + "/samples.json";
        RunResult r = runWorkload(Design::d1b, "vvadd", Scale::tiny, o);
        EXPECT_TRUE(r.ok()) << spec << ": " << r.message;
        RunResult a = ref, b = r;
        a.log.clear();
        b.log.clear();
        EXPECT_EQ(runResultToJson(a).dump(0), runResultToJson(b).dump(0))
            << spec << " perturbed the simulation";
        EXPECT_TRUE(tempsUnder(dir).empty()) << spec;
    }
}

TEST(IoFaultDegradationTest, FarmPublishFailureFallsBackPrivately)
{
    InjectorReset reset;
    std::string dir = scratchDir("farmdeg");

    auto farmJob = [&](double ghz) {
        SweepJob j = vvaddJob();
        j.opts.bigGhz = ghz;
        j.opts.checkpoint.farm = true;
        j.opts.checkpoint.farmDir = dir + "/farm";
        j.opts.checkpoint.ffInsts = 150;
        return j;
    };

    RunResult refA, refB;
    {
        SweepServiceOptions o;
        o.jobs = 1;
        SweepService svc(o);
        refA = svc.submit(farmJob(1.0)).get();
        refB = svc.submit(farmJob(1.25)).get();
        ASSERT_TRUE(refA.ok());
        ASSERT_TRUE(refB.ok());
        auto s = svc.summary();
        EXPECT_EQ(s.farmProduced, 1u);
        EXPECT_EQ(s.farmHits, 1u);
    }

    std::filesystem::remove_all(dir + "/farm");
    io::ioFaultReset();
    CheckpointFarm::resetForTest();
    io::ioFaultInstall(
        io::ioFaultPlanFromSpec("enospc@checkpoint.save.write"));
    {
        SweepServiceOptions o;
        o.jobs = 1;
        SweepService svc(o);
        RunResult a = svc.submit(farmJob(1.0)).get();
        RunResult b = svc.submit(farmJob(1.25)).get();
        EXPECT_TRUE(a.ok()) << a.message;
        EXPECT_TRUE(b.ok()) << b.message;
        auto s = svc.summary();
        EXPECT_TRUE(s.farmDegraded);
        EXPECT_EQ(s.farmProduced, 0u);
        EXPECT_EQ(s.farmHits, 0u);
        EXPECT_NE(svc.summaryLine().find("farm_degraded=1"),
                  std::string::npos);

        // Same simulated results with and without the farm.
        std::pair<RunResult *, RunResult *> pairs[] = {{&a, &refA},
                                                       {&b, &refB}};
        for (auto [r, ref] : pairs) {
            r->log.clear();
            ref->log.clear();
            EXPECT_EQ(runResultToJson(*ref).dump(0),
                      runResultToJson(*r).dump(0));
        }
        EXPECT_TRUE(tempsUnder(dir).empty());
    }
}

// --- the in-process chaos harness --------------------------------------

struct ChaosDirs
{
    std::string root;
    std::string journal() const { return root + "/journal.jsonl"; }
    std::string cache() const { return root + "/cache"; }
    std::string farm() const { return root + "/farm"; }
};

std::vector<SweepJob>
chaosJobs(const ChaosDirs &d)
{
    std::vector<SweepJob> jobs;

    // Farm producer + farm restorer sharing one prefix.
    for (double ghz : {1.0, 1.25}) {
        SweepJob j = vvaddJob();
        j.opts.bigGhz = ghz;
        j.opts.checkpoint.farm = true;
        j.opts.checkpoint.farmDir = d.farm();
        j.opts.checkpoint.ffInsts = 150;
        jobs.push_back(std::move(j));
    }

    // Plain cacheable job.
    jobs.push_back(vvaddJob(Design::d1b));

    // A failing job (starved time budget) with forensics armed.
    {
        SweepJob j = vvaddJob(Design::d1b);
        j.opts.limitNs = 1.0;
        j.opts.check.forensicsPath = d.root + "/forensics.json";
        jobs.push_back(std::move(j));
    }

    // A traced job. The checkpoint.save/load sites the explicit
    // save/restore path would add are the same labels the farm jobs
    // above reach; the explicit path's (deliberately fatal) policy is
    // covered by the checkpoint suite and the shell harness.
    {
        SweepJob j = vvaddJob(Design::d1b);
        j.opts.trace.path = d.root + "/events.json";
        j.opts.trace.samplePath = d.root + "/samples.json";
        jobs.push_back(std::move(j));
    }
    return jobs;
}

struct ChaosRun
{
    bool crashed = false;
    std::vector<std::string> keys;  ///< result fingerprints, log-free
};

ChaosRun
runChaosSweep(const ChaosDirs &d)
{
    SweepService::clearStop();
    CheckpointFarm::resetForTest();
    ChaosRun out;
    try {
        SweepServiceOptions o;
        o.jobs = 1;       // deterministic site ordering
        o.maxAttempts = 1;
        o.journalPath = d.journal();
        o.cacheDir = d.cache();
        SweepService svc(o);
        std::vector<std::future<RunResult>> futures;
        for (SweepJob &j : chaosJobs(d))
            futures.push_back(svc.submit(std::move(j)));
        for (auto &f : futures) {
            try {
                RunResult r = f.get();
                r.log.clear();  // warnings legitimately differ
                out.keys.push_back(runResultToJson(r).dump(0));
            } catch (const io::IoCrashError &) {
                out.crashed = true;
            }
        }
    } catch (const io::IoCrashError &) {
        out.crashed = true;
    }
    return out;
}

/** Kinds (beyond crash) a chaos run may inject at an op of class. */
std::vector<const char *>
eligibleSpecs(io::IoOp op)
{
    switch (op) {
      case io::IoOp::write:
        return {"enospc", "short", "eio"};
      case io::IoOp::fsync:
      case io::IoOp::mkdir:
        return {"enospc", "eio"};
      case io::IoOp::rename:
        return {"torn", "eio"};
      case io::IoOp::flock:
        return {"stale_lock", "eio"};
      default:
        return {"eio"};
    }
}

TEST(IoFaultChaosTest, EverySiteFailsAndCrashesHarmlessly)
{
    InjectorReset reset;

    // Reference pass: enumerate every injection site and pin the
    // fault-free results.
    ChaosDirs ref{scratchDir("chaos_ref")};
    io::ioSiteTraceEnable(true);
    ChaosRun expect = runChaosSweep(ref);
    auto sites = io::ioSiteTraceSnapshot();
    io::ioSiteTraceEnable(false);
    ASSERT_FALSE(expect.crashed);
    ASSERT_EQ(expect.keys.size(), 5u);
    EXPECT_TRUE(tempsUnder(ref.root).empty());

    // Distinct labels, in first-reached order, with their op class.
    std::vector<std::pair<std::string, io::IoOp>> labels;
    std::set<std::string> seen;
    for (const auto &s : sites)
        if (seen.insert(s.label).second)
            labels.emplace_back(s.label, s.op);

    // The acceptance bar: a broad seam, not a token one.
    EXPECT_GE(labels.size(), 25u);
    for (const char *component :
         {"journal.", "result_cache.", "ckpt_farm.", "checkpoint.",
          "forensics.", "trace."}) {
        EXPECT_TRUE(std::any_of(labels.begin(), labels.end(),
                                [&](const auto &l) {
                                    return l.first.rfind(component,
                                                         0) == 0;
                                }))
            << "no site reached in component " << component;
    }

    // Failure pass: one deterministic non-crash fault per label.
    unsigned idx = 0;
    for (const auto &[label, op] : labels) {
        auto kinds = eligibleSpecs(op);
        std::string spec =
            std::string(kinds[idx++ % kinds.size()]) + "@" + label;
        SCOPED_TRACE(spec);

        ChaosDirs d{scratchDir("chaos_fault")};
        io::ioFaultReset();
        io::ioFaultInstall(io::ioFaultPlanFromSpec(spec));
        ChaosRun got = runChaosSweep(d);
        EXPECT_FALSE(got.crashed);
        EXPECT_EQ(got.keys, expect.keys)
            << "an injected failure changed a simulated result";
        EXPECT_TRUE(tempsUnder(d.root).empty());
        std::filesystem::remove_all(d.root);
    }

    // Crash pass: kill the "process" (clean IoCrashError unwind) at
    // each label, then recover on the same directories and demand the
    // reference results.
    for (const auto &[label, op] : labels) {
        SCOPED_TRACE("crash@" + label);
        ChaosDirs d{scratchDir("chaos_crash")};
        io::ioFaultReset();
        io::IoFaultPlan plan =
            io::ioFaultPlanFromSpec("crash@" + label);
        plan.crashExits = false;
        io::ioFaultInstall(plan);
        ChaosRun first = runChaosSweep(d);
        EXPECT_TRUE(first.crashed)
            << "crash point never reached on rerun";

        io::ioFaultReset();
        ChaosRun recovered = runChaosSweep(d);
        EXPECT_FALSE(recovered.crashed);
        EXPECT_EQ(recovered.keys, expect.keys)
            << "recovery after crash diverged from the fault-free run";
        EXPECT_TRUE(tempsUnder(d.root).empty());
        std::filesystem::remove_all(d.root);
    }
    std::filesystem::remove_all(ref.root);
}

// --- concurrency (TSan via the "*Concurrency*" label glob) -------------

TEST(IoFaultConcurrencyTest, SeamIsThreadSafeUnderContention)
{
    InjectorReset reset;
    std::string dir = scratchDir("conc");
    std::string shared = dir + "/shared.json";
    std::string lock = dir + "/shared.lock";
    const std::string data(4096, 'z');

    std::vector<std::thread> threads;
    std::atomic<unsigned> lockFailures{0};
    for (int t = 0; t < 8; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < 16; ++i) {
                // Racing atomic publishes of identical bytes: any
                // rename winning is correct, nothing torn.
                EXPECT_TRUE(io::writeFileAtomic("c.atomic", shared,
                                                data));
                std::string mine = dir + "/t" + std::to_string(t) +
                                   "_" + std::to_string(i);
                EXPECT_TRUE(io::writeFileAtomic("c.atomic", mine,
                                                data));
                int fd = io::lockExclusive("c.flock", lock, 30000);
                if (fd < 0)
                    ++lockFailures;
                else
                    io::unlockAndClose(fd);
            }
        });
    }
    for (auto &t : threads)
        t.join();

    EXPECT_EQ(lockFailures.load(), 0u);
    EXPECT_TRUE(tempsUnder(dir).empty());
    std::ifstream in(shared, std::ios::binary);
    std::string got((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    EXPECT_EQ(got, data);
    EXPECT_GE(io::ioSiteCount(), 8u * 16u * 3u);
}

} // namespace
} // namespace bvl
