/**
 * @file
 * Memory-ordering and data-movement tests of the VMU and VXU under
 * timing: vector store -> vector load RAW through the store-address
 * CAM, strided and indexed stores, masked vector memory, cross-element
 * timing (xelem stalls), and engine drain on vmfence — all checked
 * for functional correctness after full timed execution.
 */

#include <gtest/gtest.h>

#include "soc/soc.hh"
#include "vector/engine_presets.hh"

namespace bvl
{
namespace
{

constexpr Addr A = 0x100000;
constexpr Addr B = 0x200000;
constexpr Addr C = 0x300000;

double
runProg(Soc &soc, ProgramPtr prog,
        std::vector<std::pair<RegId, std::uint64_t>> args = {})
{
    prog->setTextBase(0x40000000);
    bool done = false;
    double t0 = soc.elapsedNs();
    soc.big->runProgram(std::move(prog), std::move(args),
                        [&] { done = true; });
    EXPECT_TRUE(soc.runUntil([&] { return done; },
                             soc.eq.now() + 100'000'000ull));
    return soc.elapsedNs() - t0;
}

TEST(EngineOrderingTest, VectorStoreThenLoadSameLineRaw)
{
    // v-store to a line followed by a v-load of the same line: the
    // VMSU CAM must order them; values must be the stored ones.
    Soc soc(Design::d1b4VL);
    for (unsigned i = 0; i < 16; ++i)
        soc.backing.writeT<std::int32_t>(A + 4 * i, 7);
    Asm a("st_ld_raw");
    a.li(xreg(2), A)
     .li(xreg(3), B)
     .li(xreg(10), 16)
     .vsetvli(xreg(4), xreg(10), 4)
     .vle(vreg(1), xreg(2), 4)
     .vi(Op::vadd, vreg(2), vreg(1), 100)
     .vse(vreg(2), xreg(3), 4)        // store 107s to B
     .vle(vreg(3), xreg(3), 4)        // immediately load B back
     .vi(Op::vadd, vreg(4), vreg(3), 1)
     .vse(vreg(4), xreg(2), 4)        // A = 108s
     .halt();
    runProg(soc, a.finish());
    for (unsigned i = 0; i < 16; ++i)
        EXPECT_EQ(soc.backing.readT<std::int32_t>(A + 4 * i), 108);
    EXPECT_TRUE(soc.engine->idle());
}

TEST(EngineOrderingTest, StridedStoreScattersCorrectly)
{
    Soc soc(Design::d1b4VL);
    Asm a("vsse");
    a.li(xreg(2), A)
     .li(xreg(3), 32)                 // byte stride
     .li(xreg(10), 8)
     .vsetvli(xreg(4), xreg(10), 4)
     .vid(vreg(1))
     .vsse(vreg(1), xreg(2), xreg(3), 4)
     .halt();
    runProg(soc, a.finish());
    for (unsigned i = 0; i < 8; ++i)
        EXPECT_EQ(soc.backing.readT<std::int32_t>(A + 32 * i),
                  static_cast<std::int32_t>(i));
}

TEST(EngineOrderingTest, IndexedScatterStore)
{
    Soc soc(Design::d1b4VL);
    // idx[i] = byte offset of a permuted slot
    for (unsigned i = 0; i < 16; ++i)
        soc.backing.writeT<std::uint32_t>(B + 4 * i,
                                          ((i * 5) % 16) * 4);
    Asm a("vsuxei");
    a.li(xreg(2), A)
     .li(xreg(3), B)
     .li(xreg(10), 16)
     .vsetvli(xreg(4), xreg(10), 4)
     .vle(vreg(2), xreg(3), 4)        // indices
     .vid(vreg(1))
     .vsuxei(vreg(1), xreg(2), vreg(2), 4)
     .halt();
    runProg(soc, a.finish());
    for (unsigned i = 0; i < 16; ++i)
        EXPECT_EQ(soc.backing.readT<std::int32_t>(A + ((i * 5) % 16) * 4),
                  static_cast<std::int32_t>(i));
}

TEST(EngineOrderingTest, MaskedStoreLeavesInactiveSlots)
{
    Soc soc(Design::d1b4VL);
    for (unsigned i = 0; i < 16; ++i)
        soc.backing.writeT<std::int32_t>(A + 4 * i, -1);
    Asm a("masked");
    a.li(xreg(2), A)
     .li(xreg(10), 16)
     .vsetvli(xreg(4), xreg(10), 4)
     .vid(vreg(1))
     .vi(Op::vmslt, vreg(0), vreg(1), 8)      // mask: i < 8
     .vle(vreg(2), xreg(2), 4)
     .vi(Op::vadd, vreg(3), vreg(1), 50)
     .vse(vreg(3), xreg(2), 4, /*masked=*/true)
     .halt();
    runProg(soc, a.finish());
    for (unsigned i = 0; i < 16; ++i) {
        auto got = soc.backing.readT<std::int32_t>(A + 4 * i);
        if (i < 8)
            EXPECT_EQ(got, static_cast<std::int32_t>(50 + i));
        else
            EXPECT_EQ(got, -1);
    }
}

TEST(EngineOrderingTest, GatherShowsXelemStalls)
{
    Soc soc(Design::d1b4VL);
    Asm a("vrgather");
    a.li(xreg(2), A)
     .li(xreg(10), 16)
     .vsetvli(xreg(4), xreg(10), 4)
     .vid(vreg(1))
     .li(xreg(5), 15)
     .vi(Op::vmv, vreg(2), regIdInvalid, 15)
     .vv(Op::vsub, vreg(2), vreg(2), vreg(1))   // 15 - i
     .vv(Op::vrgather, vreg(3), vreg(2), vreg(1))
     .vse(vreg(3), xreg(2), 4)
     .halt();
    runProg(soc, a.finish());
    for (unsigned i = 0; i < 16; ++i)
        EXPECT_EQ(soc.backing.readT<std::int32_t>(A + 4 * i),
                  static_cast<std::int32_t>(15 - i));
    // The vxwrite micro-ops waited on the ring at least once.
    std::uint64_t xelem = 0;
    for (unsigned l = 0; l < 4; ++l)
        xelem += soc.stats.value("little" + std::to_string(l) +
                                 ".stall.xelem");
    EXPECT_GT(xelem, 0u);
}

TEST(EngineOrderingTest, BackToBackCrossElementSerializes)
{
    // Two gathers in flight: the VXU handles one instruction at a
    // time (paper Section III-D); results must still be correct.
    Soc soc(Design::d1b4VL);
    Asm a("two_gathers");
    a.li(xreg(2), A)
     .li(xreg(3), B)
     .li(xreg(10), 16)
     .vsetvli(xreg(4), xreg(10), 4)
     .vid(vreg(1))
     .vi(Op::vmv, vreg(2), regIdInvalid, 15)
     .vv(Op::vsub, vreg(2), vreg(2), vreg(1))
     .vv(Op::vrgather, vreg(3), vreg(2), vreg(1))  // reverse
     .vv(Op::vrgather, vreg(4), vreg(2), vreg(3))  // reverse again = id
     .vse(vreg(3), xreg(2), 4)
     .vse(vreg(4), xreg(3), 4)
     .halt();
    runProg(soc, a.finish());
    for (unsigned i = 0; i < 16; ++i) {
        EXPECT_EQ(soc.backing.readT<std::int32_t>(A + 4 * i),
                  static_cast<std::int32_t>(15 - i));
        EXPECT_EQ(soc.backing.readT<std::int32_t>(B + 4 * i),
                  static_cast<std::int32_t>(i));
    }
}

TEST(EngineOrderingTest, DeeperCommandQueueImprovesDecoupling)
{
    auto runWithDepth = [](unsigned depth) {
        SocParams sp;
        sp.design = Design::d1b4VL;
        auto ep = vlittlePreset();
        // The decoupling distance is the whole front-end chain:
        // command queue, cracked micro-op queue, and VMIU queue.
        ep.cmdQueueDepth = depth;
        ep.uopQueueDepth = 2 * depth;
        ep.vmiuQueueDepth = depth;
        sp.engineOverride = std::make_unique<VEngineParams>(ep);
        Soc soc(std::move(sp));
        const unsigned n = 2048;
        for (unsigned i = 0; i < n; ++i)
            soc.backing.writeT<float>(A + 4 * i, 1.0f * i);
        Asm a("stream");
        a.li(xreg(2), A)
         .li(xreg(3), C)
         .label("loop")
         .vsetvli(xreg(4), xreg(10), 4)
         .vle(vreg(1), xreg(2), 4)
         .vv(Op::vfadd, vreg(2), vreg(1), vreg(1))
         .vse(vreg(2), xreg(3), 4)
         .slli(xreg(6), xreg(4), 2)
         .add(xreg(2), xreg(2), xreg(6))
         .add(xreg(3), xreg(3), xreg(6))
         .sub(xreg(10), xreg(10), xreg(4))
         .bne(xreg(10), xreg(0), "loop")
         .halt();
        return runProg(soc, a.finish(), {{xreg(10), n}});
    };
    double shallow = runWithDepth(2);
    double deep = runWithDepth(32);
    EXPECT_LT(deep, shallow);
}

TEST(EngineOrderingTest, UnpackedConfigIsSlowerOnPackableData)
{
    auto runPacked = [](bool packed) {
        SocParams sp;
        sp.design = Design::d1b4VL;
        auto ep = vlittlePreset();
        ep.packed = packed;
        sp.engineOverride = std::make_unique<VEngineParams>(ep);
        Soc soc(std::move(sp));
        const unsigned n = 1024;
        for (unsigned i = 0; i < n; ++i)
            soc.backing.writeT<std::int32_t>(A + 4 * i, i);
        Asm a("packable");
        a.li(xreg(2), A)
         .label("loop")
         .vsetvli(xreg(4), xreg(10), 4)
         .vle(vreg(1), xreg(2), 4)
         .vi(Op::vadd, vreg(2), vreg(1), 3)
         .vse(vreg(2), xreg(2), 4)
         .slli(xreg(6), xreg(4), 2)
         .add(xreg(2), xreg(2), xreg(6))
         .sub(xreg(10), xreg(10), xreg(4))
         .bne(xreg(10), xreg(0), "loop")
         .halt();
        return runProg(soc, a.finish(), {{xreg(10), n}});
    };
    EXPECT_LT(runPacked(true), runPacked(false));
}

} // namespace
} // namespace bvl
