/**
 * @file
 * Tests of the observability layer (src/sim/trace/): Perfetto trace
 * emission, category/window filtering, determinism, the interval stat
 * sampler, and the guarantee that arming a trace never perturbs the
 * simulation itself.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include "sim/check/json.hh"
#include "sim/trace/trace.hh"
#include "soc/run_driver.hh"
#include "workloads/workload.hh"

namespace bvl
{
namespace
{

std::string
tempPath(const std::string &leaf)
{
    return ::testing::TempDir() + leaf;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

RunResult
runTraced(const TraceOptions &trace, Design d = Design::d1b4VL,
          const std::string &workload = "saxpy")
{
    RunOptions opts;
    opts.trace = trace;
    return runWorkload(d, workload, Scale::tiny, opts);
}

// ------------------------------------------------------- category parse

TEST(TraceCatTest, ParsesNamesAndDefaults)
{
    EXPECT_EQ(parseTraceCats(""), traceCatAll);
    EXPECT_EQ(parseTraceCats("all"), traceCatAll);
    EXPECT_EQ(parseTraceCats("vcu"),
              static_cast<unsigned>(TraceCat::vcu));
    EXPECT_EQ(parseTraceCats("big,lane,dram"),
              static_cast<unsigned>(TraceCat::big) |
                  static_cast<unsigned>(TraceCat::lane) |
                  static_cast<unsigned>(TraceCat::dram));
    EXPECT_THROW(parseTraceCats("nonsense"), SimFatalError);
}

TEST(TraceCatTest, EveryCategoryNameRoundTrips)
{
    for (unsigned bit = 0; bit < 8; ++bit) {
        TraceCat c = static_cast<TraceCat>(1u << bit);
        EXPECT_EQ(parseTraceCats(traceCatName(c)),
                  static_cast<unsigned>(c));
    }
}

// ------------------------------------------------------- armed emission

TEST(TraceTest, ArmedRunWritesValidJsonWithAllTracks)
{
    std::string path = tempPath("bvl_trace_valid.json");
    auto r = runTraced({.path = path});
    ASSERT_TRUE(r.ok()) << r.message;

    Json doc = Json::parse(slurp(path));
    EXPECT_EQ(doc["displayTimeUnit"].asString(), "ns");
    const Json &events = doc["traceEvents"];
    ASSERT_GT(events.size(), 100u);

    std::set<std::string> tracks;
    for (const auto &ev : events.items())
        if (ev["ph"].asString() == "M")
            tracks.insert(ev["args"]["name"].asString());
    // One track per paper component: big core, little cores, the
    // VCU + memory units + ring of the VLITTLE engine, its lanes,
    // every cache, and the DRAM channel.
    for (const char *want :
         {"big", "little0", "little3", "vlittle.vcu", "vlittle.vmiu",
          "vlittle.vmsu0", "vlittle.vmsu3", "vlittle.vlu",
          "vlittle.vsu", "vlittle.vxu", "little0.lane", "little3.lane",
          "big.l1d", "little0.l1d", "l2", "dram"})
        EXPECT_TRUE(tracks.count(want)) << "missing track " << want;

    // Every acceptance-relevant category must actually carry events,
    // not just a registered track.
    std::set<std::string> cats;
    for (const auto &ev : events.items())
        if (ev["ph"].asString() != "M")
            cats.insert(ev["cat"].asString());
    // (vxu only carries events on ring-traffic workloads —
    // reductions and vx reads — so it is not required here.)
    for (const char *want :
         {"big", "vcu", "lane", "vmu", "cache", "dram"})
        EXPECT_TRUE(cats.count(want)) << "no events in category "
                                      << want;

    // Async begin/end events must pair up exactly, per (tid, id).
    std::set<std::pair<std::uint64_t, std::uint64_t>> open;
    for (const auto &ev : events.items()) {
        std::string ph = ev["ph"].asString();
        if (ph != "b" && ph != "e")
            continue;
        auto key = std::make_pair(ev["tid"].asU64(), ev["id"].asU64());
        if (ph == "b") {
            EXPECT_TRUE(open.insert(key).second)
                << "duplicate open async id " << key.second;
        } else {
            EXPECT_EQ(open.erase(key), 1u)
                << "end without begin, id " << key.second;
        }
    }
    EXPECT_TRUE(open.empty()) << open.size() << " unclosed async events";

    std::remove(path.c_str());
}

TEST(TraceTest, CategoryMaskFiltersEvents)
{
    std::string path = tempPath("bvl_trace_cats.json");
    TraceOptions t;
    t.path = path;
    t.categories = parseTraceCats("vcu,dram");
    auto r = runTraced(t);
    ASSERT_TRUE(r.ok()) << r.message;

    Json doc = Json::parse(slurp(path));
    unsigned kept = 0;
    for (const auto &ev : doc["traceEvents"].items()) {
        if (ev["ph"].asString() == "M")
            continue;
        std::string cat = ev["cat"].asString();
        EXPECT_TRUE(cat == "vcu" || cat == "dram") << "leaked " << cat;
        ++kept;
    }
    EXPECT_GT(kept, 0u);
    std::remove(path.c_str());
}

TEST(TraceTest, RingTrafficAppearsOnTheVxuTrack)
{
    // saxpy never touches the exchange ring; reductions (sw's
    // row-max) do. Trace only the vxu category to keep the file tiny.
    std::string path = tempPath("bvl_trace_vxu.json");
    TraceOptions t;
    t.path = path;
    t.categories = parseTraceCats("vxu");
    auto r = runTraced(t, Design::d1b4VL, "sw");
    ASSERT_TRUE(r.ok()) << r.message;

    Json doc = Json::parse(slurp(path));
    unsigned reads = 0, shifts = 0;
    for (const auto &ev : doc["traceEvents"].items()) {
        if (ev["ph"].asString() == "M")
            continue;
        EXPECT_EQ(ev["cat"].asString(), "vxu");
        if (ev["name"].asString() == "ringRead")
            ++reads;
        if (ev["name"].asString() == "ringShift")
            ++shifts;
    }
    EXPECT_GT(reads, 0u);
    EXPECT_GT(shifts, 0u);
    std::remove(path.c_str());
}

TEST(TraceTest, WindowClipsEventsToRequestedRange)
{
    std::string path = tempPath("bvl_trace_window.json");
    TraceOptions t;
    t.path = path;
    t.startNs = 200.0;
    t.stopNs = 600.0;
    auto r = runTraced(t);
    ASSERT_TRUE(r.ok()) << r.message;
    ASSERT_GT(r.ns, 600.0);  // the run extends past the window

    Json doc = Json::parse(slurp(path));
    unsigned kept = 0;
    for (const auto &ev : doc["traceEvents"].items()) {
        if (ev["ph"].asString() == "M")
            continue;
        double ns = ev["ts"].asDouble() * 1000.0;  // ts is in us
        EXPECT_GE(ns, 200.0);
        EXPECT_LE(ns, 600.0);
        ++kept;
    }
    EXPECT_GT(kept, 0u);
    std::remove(path.c_str());
}

// ---------------------------------------------------------- determinism

TEST(TraceTest, RerunsProduceByteIdenticalTraces)
{
    std::string p1 = tempPath("bvl_trace_det1.json");
    std::string p2 = tempPath("bvl_trace_det2.json");
    ASSERT_TRUE(runTraced({.path = p1}).ok());
    ASSERT_TRUE(runTraced({.path = p2}).ok());
    std::string a = slurp(p1), b = slurp(p2);
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b);
    std::remove(p1.c_str());
    std::remove(p2.c_str());
}

TEST(TraceTest, ArmingDoesNotPerturbTheSimulation)
{
    std::string path = tempPath("bvl_trace_perturb.json");
    auto plain = runTraced({});  // TraceOptions disabled -> no Tracer
    TraceOptions t;
    t.path = path;
    t.samplePath = tempPath("bvl_trace_perturb_samples.json");
    auto traced = runTraced(t);
    ASSERT_TRUE(plain.ok());
    ASSERT_TRUE(traced.ok());
    EXPECT_EQ(plain.ns, traced.ns);
    EXPECT_EQ(plain.stats, traced.stats);
    std::remove(path.c_str());
    std::remove(t.samplePath.c_str());
}

// -------------------------------------------------------------- sampler

TEST(TraceSampleTest, DeltaSumsMatchEndOfRunTotals)
{
    TraceOptions t;
    t.samplePath = tempPath("bvl_trace_samples.json");
    t.sampleIntervalNs = 100.0;
    auto r = runTraced(t);
    ASSERT_TRUE(r.ok()) << r.message;

    Json doc = Json::parse(slurp(t.samplePath));
    EXPECT_EQ(doc["format"].asString(), "bvl-stat-samples-v1");
    EXPECT_EQ(doc["intervalNs"].asDouble(), 100.0);
    ASSERT_GT(doc["samples"].size(), 2u);

    std::map<std::string, std::uint64_t> sums;
    double prevNs = -1.0;
    for (const auto &s : doc["samples"].items()) {
        EXPECT_GT(s["ns"].asDouble(), prevNs);  // strictly increasing
        prevNs = s["ns"].asDouble();
        for (const auto &kv : s["deltas"].members()) {
            EXPECT_GT(kv.second.asU64(), 0u);  // zero deltas elided
            sums[kv.first] += kv.second.asU64();
        }
    }
    // The final (partial) interval is flushed at finish(), so the sum
    // of interval deltas reproduces the end-of-run stat totals.
    for (const auto &kv : sums)
        EXPECT_EQ(kv.second, r.stat(kv.first)) << kv.first;
    for (const char *stat : {"big.fetched", "dram.reads", "l2.misses"})
        EXPECT_TRUE(sums.count(stat)) << "never sampled: " << stat;

    std::remove(t.samplePath.c_str());
}

TEST(TraceSampleTest, CsvSuffixSelectsCsvOutput)
{
    TraceOptions t;
    t.samplePath = tempPath("bvl_trace_samples.csv");
    t.sampleIntervalNs = 250.0;
    ASSERT_TRUE(runTraced(t).ok());

    std::ifstream in(t.samplePath);
    std::string header;
    ASSERT_TRUE(std::getline(in, header));
    EXPECT_EQ(header.rfind("ns,", 0), 0u);
    EXPECT_NE(header.find("big.fetched"), std::string::npos);
    unsigned rows = 0;
    std::string line;
    while (std::getline(in, line))
        ++rows;
    EXPECT_GT(rows, 2u);
    std::remove(t.samplePath.c_str());
}

// ------------------------------------------------------------ forensics

TEST(TraceTest, RunOptionsTraceRoundTripsThroughForensics)
{
    // TraceOptions ride the replay recipe: write a failure report for
    // a run armed with tracing and read the recipe back.
    std::string report = tempPath("bvl_trace_forensics.json");
    std::string trace = tempPath("bvl_trace_forensics_trace.json");
    RunOptions opts;
    opts.limitNs = 50.0;  // guaranteed time_limit failure
    opts.check.forensicsPath = report;
    opts.trace.path = trace;
    opts.trace.startNs = 12.5;
    opts.trace.stopNs = 80.0;
    opts.trace.categories = parseTraceCats("cache,dram");
    opts.trace.sampleIntervalNs = 42.0;
    auto r = runWorkload(Design::d1b, "vvadd", Scale::tiny, opts);
    ASSERT_EQ(r.status, RunStatus::time_limit);

    Json doc = Json::parse(slurp(report));
    const Json &t = doc["replay"]["options"]["trace"];
    EXPECT_EQ(t["path"].asString(), trace);
    EXPECT_EQ(t["startNs"].asDouble(), 12.5);
    EXPECT_EQ(t["stopNs"].asDouble(), 80.0);
    EXPECT_EQ(t["categories"].asU64(), parseTraceCats("cache,dram"));
    EXPECT_EQ(t["sampleIntervalNs"].asDouble(), 42.0);
    // A failed run still gets a complete, parseable trace (the footer
    // is flushed on every exit path).
    Json traceDoc = Json::parse(slurp(trace));
    EXPECT_GT(traceDoc["traceEvents"].size(), 0u);
    std::remove(report.c_str());
    std::remove(trace.c_str());
}

} // namespace
} // namespace bvl
