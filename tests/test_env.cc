/**
 * @file
 * Strict environment-variable parsing tests (sim/env.hh): every BVL_*
 * knob must reject a malformed value with a one-line actionable fatal
 * instead of silently running with a default the user did not ask
 * for. Each shipped variable — BVL_JOBS, BVL_SWEEP_ISOLATE, BVL_SCALE
 * — gets its own regression through the code path that consumes it.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "sim/env.hh"
#include "sweep/service/service.hh"
#include "sweep/sweep_runner.hh"

namespace bvl
{
namespace
{

/** RAII env var override; restores the previous value on scope exit. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        const char *old = std::getenv(name);
        had_ = old != nullptr;
        if (had_)
            saved_ = old;
        if (value)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }
    ~ScopedEnv()
    {
        if (had_)
            ::setenv(name_, saved_.c_str(), 1);
        else
            ::unsetenv(name_);
    }

  private:
    const char *name_;
    std::string saved_;
    bool had_ = false;
};

/** The fatal's message, so tests can assert it is actionable. */
std::string
fatalMessage(const std::function<void()> &f)
{
    try {
        f();
    } catch (const SimFatalError &e) {
        return e.what();
    }
    return "";
}

// --- envInt ------------------------------------------------------------

TEST(EnvParseTest, EnvIntParsesAndFallsBack)
{
    {
        ScopedEnv e("BVL_TEST_INT", nullptr);
        EXPECT_EQ(envInt("BVL_TEST_INT", 7, 1, 100), 7);
    }
    ScopedEnv e("BVL_TEST_INT", "42");
    EXPECT_EQ(envInt("BVL_TEST_INT", 7, 1, 100), 42);
}

TEST(EnvParseTest, EnvIntRejectsGarbage)
{
    for (const char *bad : {"4x", "", " 4", "1e3", "0x10",
                            "99999999999999999999999"}) {
        ScopedEnv e("BVL_TEST_INT", bad);
        EXPECT_THROW(envInt("BVL_TEST_INT", 7, 1, 100), SimFatalError)
            << "accepted '" << bad << "'";
    }
    // Out of range is rejected too, not clamped.
    ScopedEnv lo("BVL_TEST_INT", "0");
    EXPECT_THROW(envInt("BVL_TEST_INT", 7, 1, 100), SimFatalError);
}

// --- envBool01 ---------------------------------------------------------

TEST(EnvParseTest, EnvBool01ParsesAndFallsBack)
{
    {
        ScopedEnv e("BVL_TEST_BOOL", nullptr);
        EXPECT_TRUE(envBool01("BVL_TEST_BOOL", true));
        EXPECT_FALSE(envBool01("BVL_TEST_BOOL", false));
    }
    ScopedEnv on("BVL_TEST_BOOL", "1");
    EXPECT_TRUE(envBool01("BVL_TEST_BOOL", false));
    ScopedEnv off("BVL_TEST_BOOL", "0");
    EXPECT_FALSE(envBool01("BVL_TEST_BOOL", true));
}

TEST(EnvParseTest, EnvBool01RejectsWords)
{
    for (const char *bad : {"yes", "true", "on", "", "2"}) {
        ScopedEnv e("BVL_TEST_BOOL", bad);
        EXPECT_THROW(envBool01("BVL_TEST_BOOL", false), SimFatalError)
            << "accepted '" << bad << "'";
    }
}

// --- envChoice ---------------------------------------------------------

TEST(EnvParseTest, EnvChoiceParsesAndFallsBack)
{
    {
        ScopedEnv e("BVL_TEST_CHOICE", nullptr);
        EXPECT_EQ(envChoice("BVL_TEST_CHOICE", {"a", "b"}, -1), -1);
    }
    ScopedEnv e("BVL_TEST_CHOICE", "b");
    EXPECT_EQ(envChoice("BVL_TEST_CHOICE", {"a", "b"}, -1), 1);
}

TEST(EnvParseTest, EnvChoiceErrorListsLegalValues)
{
    ScopedEnv e("BVL_TEST_CHOICE", "c");
    std::string msg = fatalMessage([] {
        envChoice("BVL_TEST_CHOICE", {"a", "b"}, -1);
    });
    // Actionable: names the variable, the legal values, and what the
    // user actually typed.
    EXPECT_NE(msg.find("BVL_TEST_CHOICE"), std::string::npos) << msg;
    EXPECT_NE(msg.find("a|b"), std::string::npos) << msg;
    EXPECT_NE(msg.find("'c'"), std::string::npos) << msg;
}

// --- BVL_JOBS (sweep_runner.cc) ----------------------------------------

TEST(EnvParseTest, JobsVariableIsStrict)
{
    {
        ScopedEnv e("BVL_JOBS", "3");
        EXPECT_EQ(SweepRunner::defaultJobs(), 3u);
    }
    {
        ScopedEnv e("BVL_JOBS", nullptr);
        EXPECT_GE(SweepRunner::defaultJobs(), 1u);
    }
    for (const char *bad : {"4x", "0", "-1", "", "many"}) {
        ScopedEnv e("BVL_JOBS", bad);
        EXPECT_THROW(SweepRunner::defaultJobs(), SimFatalError)
            << "accepted BVL_JOBS='" << bad << "'";
    }
    ScopedEnv e("BVL_JOBS", "4x");
    std::string msg =
        fatalMessage([] { SweepRunner::defaultJobs(); });
    EXPECT_NE(msg.find("BVL_JOBS"), std::string::npos) << msg;
    EXPECT_NE(msg.find("'4x'"), std::string::npos) << msg;
}

// --- BVL_SWEEP_ISOLATE (service.cc) ------------------------------------

TEST(EnvParseTest, SweepIsolateVariableIsStrict)
{
    SweepServiceOptions opts;
    opts.jobs = 1;
    {
        ScopedEnv e("BVL_SWEEP_ISOLATE", "1");
        SweepService svc(opts);
        EXPECT_TRUE(svc.options().isolate);
    }
    {
        ScopedEnv e("BVL_SWEEP_ISOLATE", "0");
        SweepService svc(opts);
        EXPECT_FALSE(svc.options().isolate);
    }
    for (const char *bad : {"yes", "true", "2", ""}) {
        ScopedEnv e("BVL_SWEEP_ISOLATE", bad);
        EXPECT_THROW(SweepService svc(opts), SimFatalError)
            << "accepted BVL_SWEEP_ISOLATE='" << bad << "'";
    }
}

// --- BVL_SCALE (bench/bench_util.hh chosenScale) -----------------------

TEST(EnvParseTest, ScaleVariableIsStrict)
{
    // The exact call bench_util.hh's chosenScale() makes.
    auto scaleIndex = [] {
        return envChoice("BVL_SCALE", {"tiny", "small", "medium"}, -1);
    };
    {
        ScopedEnv e("BVL_SCALE", nullptr);
        EXPECT_EQ(scaleIndex(), -1);
    }
    {
        ScopedEnv e("BVL_SCALE", "medium");
        EXPECT_EQ(scaleIndex(), 2);
    }
    for (const char *bad : {"Small", "large", "", "tiny "}) {
        ScopedEnv e("BVL_SCALE", bad);
        EXPECT_THROW(scaleIndex(), SimFatalError)
            << "accepted BVL_SCALE='" << bad << "'";
    }
    ScopedEnv e("BVL_SCALE", "large");
    std::string msg = fatalMessage(scaleIndex);
    EXPECT_NE(msg.find("tiny|small|medium"), std::string::npos) << msg;
}

} // namespace
} // namespace bvl
