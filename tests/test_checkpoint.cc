/**
 * @file
 * Checkpoint and fast-forward engine tests (DESIGN.md §15): a restored
 * run must be byte-identical to the run that saved the checkpoint; a
 * corrupt or missing checkpoint is quarantined/re-simulated, never
 * silently trusted; mismatched checkpoints are fatal; SMARTS-style
 * sampled runs estimate runtime, still verify results, and are
 * deterministic; and every invalid mode combination is rejected.
 *
 * Naming keys the ctest label partition: CheckpointDeterminismTest
 * runs with the concurrency suites under ThreadSanitizer (it drives
 * the sweep service at several BVL_JOBS settings), while
 * CheckpointTest stays in the unit label.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "soc/checkpoint.hh"
#include "soc/checkpoint_farm.hh"
#include "soc/run_driver.hh"
#include "soc/run_io.hh"
#include "sweep/service/service.hh"
#include "vector/engine_presets.hh"

namespace bvl
{
namespace
{

std::string
scratchDir(const char *tag)
{
    std::string dir = ::testing::TempDir() + "bvl_ckpt_" + tag + "_" +
                      std::to_string(::getpid());
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

RunOptions
saveOpts(const std::string &path, std::uint64_t ff)
{
    RunOptions o;
    o.checkpoint.savePath = path;
    o.checkpoint.ffInsts = ff;
    return o;
}

RunOptions
restoreOpts(const std::string &path, std::uint64_t ff)
{
    RunOptions o;
    o.checkpoint.restorePath = path;
    o.checkpoint.ffInsts = ff;
    return o;
}

/**
 * Serialized result minus the log: the save run informs about the
 * written file and a fallback run warns, so the captured log is the
 * one field that legitimately differs between the flows. Everything
 * else — ns, status, verification, every stat — must match exactly.
 */
std::string
dumpNoLog(RunResult r)
{
    r.log.clear();
    return runResultToJson(r).dump(0);
}

// --- save / restore ----------------------------------------------------

TEST(CheckpointTest, SaveThenRestoreIsByteIdentical)
{
    std::string dir = scratchDir("roundtrip");
    std::string ck = dir + "/saxpy.bvl";

    RunResult saved = runWorkload(Design::d1b4VL, "saxpy", Scale::tiny,
                                  saveOpts(ck, 150));
    ASSERT_TRUE(saved.ok()) << saved.message;
    EXPECT_TRUE(saved.verified);
    ASSERT_TRUE(std::filesystem::exists(ck));
    EXPECT_NE(saved.log.find("checkpoint written"), std::string::npos);

    RunResult restored = runWorkload(Design::d1b4VL, "saxpy",
                                     Scale::tiny, restoreOpts(ck, 150));
    ASSERT_TRUE(restored.ok()) << restored.message;
    EXPECT_TRUE(restored.verified);

    // The whole point: resuming from the snapshot reproduces the save
    // run exactly, stats and simulated time included.
    EXPECT_EQ(dumpNoLog(restored), dumpNoLog(saved));
    EXPECT_EQ(restored.ns, saved.ns);
    EXPECT_EQ(restored.stats, saved.stats);

    // And saving is itself deterministic: a second save run produces
    // an identical result and an identical checkpoint file.
    std::string ck2 = dir + "/saxpy2.bvl";
    RunResult saved2 = runWorkload(Design::d1b4VL, "saxpy", Scale::tiny,
                                   saveOpts(ck2, 150));
    EXPECT_EQ(dumpNoLog(saved2), dumpNoLog(saved));
    std::ifstream a(ck, std::ios::binary), b(ck2, std::ios::binary);
    std::string bytesA((std::istreambuf_iterator<char>(a)),
                       std::istreambuf_iterator<char>());
    std::string bytesB((std::istreambuf_iterator<char>(b)),
                       std::istreambuf_iterator<char>());
    EXPECT_EQ(bytesA, bytesB);
}

TEST(CheckpointTest, WorksOnEveryFastForwardableDesign)
{
    // One little core (scalar), big scalar, big + each vector engine:
    // all four executing-core/predictor/cache layouts of the format.
    std::string dir = scratchDir("designs");
    for (Design d : {Design::d1L, Design::d1b, Design::d1bIV,
                     Design::d1bDV, Design::d1b4VL}) {
        std::string ck = dir + "/" + designName(d) + ".bvl";
        RunResult saved = runWorkload(d, "vvadd", Scale::tiny,
                                      saveOpts(ck, 100));
        ASSERT_TRUE(saved.ok()) << designName(d) << ": "
                                << saved.message;
        RunResult restored = runWorkload(d, "vvadd", Scale::tiny,
                                         restoreOpts(ck, 100));
        ASSERT_TRUE(restored.ok()) << designName(d) << ": "
                                   << restored.message;
        EXPECT_EQ(dumpNoLog(restored), dumpNoLog(saved))
            << designName(d);
    }
}

// --- corrupt / missing / mismatched checkpoints ------------------------

TEST(CheckpointTest, CorruptCheckpointIsQuarantinedAndResimulated)
{
    std::string dir = scratchDir("corrupt");
    std::string ck = dir + "/ck.bvl";

    RunResult saved = runWorkload(Design::d1b4VL, "saxpy", Scale::tiny,
                                  saveOpts(ck, 150));
    ASSERT_TRUE(saved.ok()) << saved.message;

    // Flip one payload byte; the digest in the header catches it.
    {
        std::fstream f(ck, std::ios::in | std::ios::out |
                               std::ios::binary);
        ASSERT_TRUE(f.good());
        f.seekg(0, std::ios::end);
        auto size = static_cast<std::streamoff>(f.tellg());
        ASSERT_GT(size, 200);
        f.seekg(size - 100);
        char c = 0;
        f.get(c);
        f.seekp(size - 100);
        f.put(static_cast<char>(c ^ 0xff));
    }

    RunResult restored = runWorkload(Design::d1b4VL, "saxpy",
                                     Scale::tiny, restoreOpts(ck, 150));
    // Quarantined (renamed aside, never trusted) and re-simulated to
    // the same answer.
    ASSERT_TRUE(restored.ok()) << restored.message;
    EXPECT_NE(restored.log.find("quarantined"), std::string::npos)
        << restored.log;
    EXPECT_FALSE(std::filesystem::exists(ck));
    EXPECT_TRUE(std::filesystem::exists(ck + ".corrupt"));
    EXPECT_EQ(dumpNoLog(restored), dumpNoLog(saved));
}

TEST(CheckpointTest, MissingCheckpointFallsBackToFastForward)
{
    std::string dir = scratchDir("missing");
    std::string ck = dir + "/ck.bvl";

    RunResult saved = runWorkload(Design::d1b4VL, "saxpy", Scale::tiny,
                                  saveOpts(ck, 150));
    ASSERT_TRUE(saved.ok()) << saved.message;

    RunResult restored = runWorkload(
        Design::d1b4VL, "saxpy", Scale::tiny,
        restoreOpts(dir + "/nope.bvl", 150));
    ASSERT_TRUE(restored.ok()) << restored.message;
    EXPECT_NE(restored.log.find("missing"), std::string::npos)
        << restored.log;
    EXPECT_EQ(dumpNoLog(restored), dumpNoLog(saved));

    // ...but only when ffInsts says how far to re-simulate.
    RunResult stuck = runWorkload(Design::d1b4VL, "saxpy", Scale::tiny,
                                  restoreOpts(dir + "/nope.bvl", 0));
    EXPECT_EQ(stuck.status, RunStatus::sim_error);
}

TEST(CheckpointTest, MismatchedCheckpointIsFatal)
{
    std::string dir = scratchDir("mismatch");
    std::string ck = dir + "/ck.bvl";
    ASSERT_TRUE(runWorkload(Design::d1b4VL, "saxpy", Scale::tiny,
                            saveOpts(ck, 150)).ok());

    // Wrong design: different cache geometry and executing core; a
    // quiet fallback would mask a config error, so it must be fatal.
    RunResult wrongDesign = runWorkload(Design::d1bDV, "saxpy",
                                        Scale::tiny,
                                        restoreOpts(ck, 150));
    EXPECT_EQ(wrongDesign.status, RunStatus::sim_error);
    EXPECT_NE(wrongDesign.message.find("does not match"),
              std::string::npos) << wrongDesign.message;

    RunResult wrongWorkload = runWorkload(Design::d1b4VL, "vvadd",
                                          Scale::tiny,
                                          restoreOpts(ck, 150));
    EXPECT_EQ(wrongWorkload.status, RunStatus::sim_error);
    EXPECT_NE(wrongWorkload.message.find("does not match"),
              std::string::npos) << wrongWorkload.message;
}

TEST(CheckpointTest, FastForwardPastHaltIsFatal)
{
    // saxpy tiny executes ~359 dynamic instructions; asking to skip
    // more must fail loudly (a checkpoint "after the end" would make
    // the detailed window measure nothing).
    std::string dir = scratchDir("pasthalt");
    RunResult r = runWorkload(Design::d1b4VL, "saxpy", Scale::tiny,
                              saveOpts(dir + "/ck.bvl", 1000000));
    EXPECT_EQ(r.status, RunStatus::sim_error);
    EXPECT_NE(r.message.find("halted"), std::string::npos)
        << r.message;
    EXPECT_FALSE(std::filesystem::exists(dir + "/ck.bvl"));
}

// --- strict restore ----------------------------------------------------

TEST(CheckpointTest, StrictRestoreSucceedsOrFailsLoudly)
{
    std::string dir = scratchDir("strict");
    std::string ck = dir + "/ck.bvl";
    RunResult saved = runWorkload(Design::d1b4VL, "saxpy", Scale::tiny,
                                  saveOpts(ck, 150));
    ASSERT_TRUE(saved.ok()) << saved.message;

    // A valid checkpoint restores under strict exactly like the
    // tolerant path (strict forbids ffInsts, so none is set).
    RunOptions strict;
    strict.checkpoint.restorePath = ck;
    strict.checkpoint.strict = true;
    RunResult ok = runWorkload(Design::d1b4VL, "saxpy", Scale::tiny,
                               strict);
    ASSERT_TRUE(ok.ok()) << ok.message;
    EXPECT_EQ(dumpNoLog(ok), dumpNoLog(saved));

    // A missing entry is a hard error — strict mode exists so CI can
    // assert "this sweep ran zero fast-forwards".
    RunOptions missing = strict;
    missing.checkpoint.restorePath = dir + "/nope.bvl";
    RunResult m = runWorkload(Design::d1b4VL, "saxpy", Scale::tiny,
                              missing);
    EXPECT_EQ(m.status, RunStatus::sim_error);
    EXPECT_NE(m.message.find("strict restore"), std::string::npos)
        << m.message;

    // So is a corrupt one: quarantine-and-resimulate is the tolerant
    // path's business.
    {
        std::fstream f(ck, std::ios::in | std::ios::out |
                               std::ios::binary);
        f.seekg(-50, std::ios::end);
        char b = 0;
        f.get(b);
        f.seekp(-50, std::ios::end);
        f.put(static_cast<char>(b ^ 0xff));
    }
    RunResult c = runWorkload(Design::d1b4VL, "saxpy", Scale::tiny,
                              strict);
    EXPECT_EQ(c.status, RunStatus::sim_error);
    EXPECT_NE(c.message.find("strict restore"), std::string::npos)
        << c.message;
}

// --- checkpoint-prefix farm (DESIGN.md §16) ----------------------------

RunOptions
farmOpts(const std::string &dir, std::uint64_t ff)
{
    RunOptions o;
    o.checkpoint.farm = true;
    o.checkpoint.farmDir = dir;
    o.checkpoint.ffInsts = ff;
    return o;
}

/** Published "*.bvl" entries under the farm directory. */
std::vector<std::filesystem::path>
farmEntries(const std::string &dir)
{
    std::vector<std::filesystem::path> out;
    std::error_code ec;
    for (auto it = std::filesystem::recursive_directory_iterator(
             dir, ec);
         !ec && it != std::filesystem::recursive_directory_iterator();
         it.increment(ec)) {
        if (it->is_regular_file() && it->path().extension() == ".bvl")
            out.push_back(it->path());
    }
    return out;
}

TEST(CheckpointTest, FarmProducesOnceThenRestoresByteIdentical)
{
    std::string dir = scratchDir("farm");
    RunOptions cold;
    cold.checkpoint.ffInsts = 150;
    RunResult base = runWorkload(Design::d1b4VL, "saxpy", Scale::tiny,
                                 cold);
    ASSERT_TRUE(base.ok()) << base.message;

    std::uint64_t p0 = CheckpointFarm::produced();
    std::uint64_t h0 = CheckpointFarm::hits();

    RunResult first = runWorkload(Design::d1b4VL, "saxpy", Scale::tiny,
                                  farmOpts(dir, 150));
    ASSERT_TRUE(first.ok()) << first.message;
    EXPECT_NE(first.log.find("produced prefix"), std::string::npos)
        << first.log;
    ASSERT_EQ(farmEntries(dir).size(), 1u);

    RunResult second = runWorkload(Design::d1b4VL, "saxpy",
                                   Scale::tiny, farmOpts(dir, 150));
    ASSERT_TRUE(second.ok()) << second.message;
    EXPECT_NE(second.log.find("restored prefix"), std::string::npos)
        << second.log;

    EXPECT_EQ(CheckpointFarm::produced() - p0, 1u);
    EXPECT_EQ(CheckpointFarm::hits() - h0, 1u);
    EXPECT_EQ(farmEntries(dir).size(), 1u);

    // The farm is a pure wall-clock optimization: both the producing
    // and the restoring cell match the cold per-cell fast-forward
    // exactly.
    EXPECT_EQ(dumpNoLog(first), dumpNoLog(base));
    EXPECT_EQ(dumpNoLog(second), dumpNoLog(base));
}

TEST(CheckpointTest, FarmSharesOnePrefixAcrossGeometries)
{
    // Two 1b-4VL cells with different VMU queue depths: the detailed
    // windows differ, but the functional prefix (flavor, VLEN 512,
    // inputs) is identical — one entry serves both.
    std::string dir = scratchDir("farmgeo");
    std::uint64_t p0 = CheckpointFarm::produced();
    std::uint64_t h0 = CheckpointFarm::hits();

    for (unsigned depth : {2u, 32u}) {
        RunOptions cold;
        cold.engineOverride = vlittlePreset();
        cold.engineOverride->loadQueueLines = depth;
        cold.checkpoint.ffInsts = 150;
        RunResult base = runWorkload(Design::d1b4VL, "saxpy",
                                     Scale::tiny, cold);
        ASSERT_TRUE(base.ok()) << base.message;

        RunOptions warm = cold;
        warm.checkpoint.farm = true;
        warm.checkpoint.farmDir = dir;
        RunResult r = runWorkload(Design::d1b4VL, "saxpy", Scale::tiny,
                                  warm);
        ASSERT_TRUE(r.ok()) << r.message;
        EXPECT_EQ(dumpNoLog(r), dumpNoLog(base)) << "depth " << depth;
    }

    EXPECT_EQ(CheckpointFarm::produced() - p0, 1u);
    EXPECT_EQ(CheckpointFarm::hits() - h0, 1u);
    EXPECT_EQ(farmEntries(dir).size(), 1u);
}

TEST(CheckpointTest, FarmCorruptEntryIsQuarantinedAndReproduced)
{
    std::string dir = scratchDir("farmcorrupt");
    RunResult first = runWorkload(Design::d1b4VL, "saxpy", Scale::tiny,
                                  farmOpts(dir, 150));
    ASSERT_TRUE(first.ok()) << first.message;
    auto entries = farmEntries(dir);
    ASSERT_EQ(entries.size(), 1u);
    std::string entry = entries[0].string();

    // Flip one payload byte in the published entry.
    {
        std::fstream f(entry, std::ios::in | std::ios::out |
                                  std::ios::binary);
        ASSERT_TRUE(f.good());
        f.seekg(0, std::ios::end);
        auto size = static_cast<std::streamoff>(f.tellg());
        ASSERT_GT(size, 200);
        f.seekg(size - 100);
        char c = 0;
        f.get(c);
        f.seekp(size - 100);
        f.put(static_cast<char>(c ^ 0xff));
    }

    std::uint64_t c0 = CheckpointFarm::corrupt();
    RunResult second = runWorkload(Design::d1b4VL, "saxpy",
                                   Scale::tiny, farmOpts(dir, 150));
    ASSERT_TRUE(second.ok()) << second.message;
    EXPECT_NE(second.log.find("quarantined"), std::string::npos)
        << second.log;
    EXPECT_EQ(CheckpointFarm::corrupt() - c0, 1u);
    EXPECT_TRUE(std::filesystem::exists(entry + ".corrupt"));
    // The prefix was re-produced, republished, and the result is
    // unchanged — a corrupt entry costs time, never correctness.
    EXPECT_TRUE(std::filesystem::exists(entry));
    EXPECT_EQ(dumpNoLog(second), dumpNoLog(first));

    // And the quarantined file never poisons a third run.
    RunResult third = runWorkload(Design::d1b4VL, "saxpy", Scale::tiny,
                                  farmOpts(dir, 150));
    ASSERT_TRUE(third.ok()) << third.message;
    EXPECT_NE(third.log.find("restored prefix"), std::string::npos);
    EXPECT_EQ(dumpNoLog(third), dumpNoLog(first));
}

TEST(CheckpointTest, FarmEvictsOldestEntriesOverBudget)
{
    std::string dir = scratchDir("farmlru");
    CheckpointFarm farm(dir);

    // Three fake 1000-byte entries with strictly increasing mtimes.
    auto plant = [&](const char *name, int ageSec) {
        std::string path = dir + "/" + name;
        std::filesystem::create_directories(
            std::filesystem::path(path).parent_path());
        std::ofstream(path, std::ios::binary)
            << std::string(1000, 'x');
        std::filesystem::last_write_time(
            path, std::filesystem::file_time_type::clock::now() -
                      std::chrono::seconds(ageSec));
        return path;
    };
    std::string oldest = plant("aa/a.bvl", 300);
    std::string middle = plant("bb/b.bvl", 200);
    std::string newest = plant("cc/c.bvl", 100);

    // Unlimited budget evicts nothing.
    EXPECT_EQ(farm.evictOverBudget(0, newest), 0u);
    EXPECT_EQ(farmEntries(dir).size(), 3u);

    // 2000-byte budget: only the oldest entry goes.
    std::uint64_t e0 = CheckpointFarm::evicted();
    EXPECT_EQ(farm.evictOverBudget(2000, newest), 1u);
    EXPECT_FALSE(std::filesystem::exists(oldest));
    EXPECT_TRUE(std::filesystem::exists(middle));
    EXPECT_TRUE(std::filesystem::exists(newest));
    EXPECT_EQ(CheckpointFarm::evicted() - e0, 1u);

    // The just-produced entry is never evicted, even when it is the
    // only way to fit the budget.
    EXPECT_EQ(farm.evictOverBudget(500, newest), 1u);
    EXPECT_FALSE(std::filesystem::exists(middle));
    EXPECT_TRUE(std::filesystem::exists(newest));
}

// --- invalid mode combinations -----------------------------------------

TEST(CheckpointTest, InvalidCombinationsAreRejected)
{
    RunOptions both;
    both.checkpoint.savePath = "/tmp/never-written.bvl";
    both.checkpoint.ffInsts = 10;
    both.sampling = {10, 0, 10, 2};
    EXPECT_EQ(runWorkload(Design::d1b4VL, "saxpy", Scale::tiny, both)
                  .status,
              RunStatus::sim_error);

    RunOptions lock;
    lock.sampling = {10, 0, 10, 2};
    lock.check.lockstep = true;
    EXPECT_EQ(runWorkload(Design::d1b4VL, "saxpy", Scale::tiny, lock)
                  .status,
              RunStatus::sim_error);

    // Task-parallel workloads and runtime designs are multi-stream.
    RunOptions sam;
    sam.sampling = {10, 0, 10, 2};
    EXPECT_EQ(runWorkload(Design::d1b4VL, "bfs", Scale::tiny, sam)
                  .status,
              RunStatus::sim_error);
    EXPECT_EQ(runWorkload(Design::d1b4L, "saxpy", Scale::tiny, sam)
                  .status,
              RunStatus::sim_error);

    // Farm and strict combos (the CLI rejects these up front; the
    // engine must too, for programmatic callers).
    RunOptions farmPlusPath;
    farmPlusPath.checkpoint.farm = true;
    farmPlusPath.checkpoint.ffInsts = 100;
    farmPlusPath.checkpoint.savePath = "/tmp/never-written.bvl";
    EXPECT_EQ(runWorkload(Design::d1b4VL, "saxpy", Scale::tiny,
                          farmPlusPath).status,
              RunStatus::sim_error);

    RunOptions farmNoFf;
    farmNoFf.checkpoint.farm = true;
    EXPECT_EQ(runWorkload(Design::d1b4VL, "saxpy", Scale::tiny,
                          farmNoFf).status,
              RunStatus::sim_error);

    RunOptions strictAlone;
    strictAlone.checkpoint.strict = true;
    strictAlone.checkpoint.ffInsts = 100;
    strictAlone.checkpoint.savePath = "/tmp/never-written.bvl";
    EXPECT_EQ(runWorkload(Design::d1b4VL, "saxpy", Scale::tiny,
                          strictAlone).status,
              RunStatus::sim_error);

    RunOptions strictFf;
    strictFf.checkpoint.strict = true;
    strictFf.checkpoint.restorePath = "/tmp/never-read.bvl";
    strictFf.checkpoint.ffInsts = 100;
    EXPECT_EQ(runWorkload(Design::d1b4VL, "saxpy", Scale::tiny,
                          strictFf).status,
              RunStatus::sim_error);
}

// --- SMARTS-style sampling ---------------------------------------------

TEST(CheckpointTest, SampledRunEstimatesVerifiesAndIsDeterministic)
{
    RunOptions full;
    RunResult ref = runWorkload(Design::d1b4VL, "saxpy", Scale::small,
                                full);
    ASSERT_TRUE(ref.ok()) << ref.message;

    RunOptions sam;
    sam.sampling = {2000, 200, 500, 4};
    RunResult s = runWorkload(Design::d1b4VL, "saxpy", Scale::small,
                              sam);
    ASSERT_TRUE(s.ok()) << s.message;
    // Functional completion is exact, so verification still applies.
    EXPECT_TRUE(s.verified);
    EXPECT_EQ(s.stat("sample.periodsMeasured"), 4u);
    EXPECT_GT(s.stat("sample.measuredInsts"), 0u);
    EXPECT_GE(s.stat("sample.totalInsts"),
              s.stat("sample.measuredInsts"));

    // The extrapolated runtime is in the right ballpark. The tight
    // (<3% mean) bound is enforced at bench scale by
    // scripts/check_bench.py; per-workload tiny-sample noise gets a
    // looser gate here.
    ASSERT_GT(s.ns, 0.0);
    double err = std::abs(s.ns - ref.ns) / ref.ns;
    EXPECT_LT(err, 0.30) << "sampled " << s.ns << " ns vs full "
                         << ref.ns << " ns";

    // Sampling is deterministic: an identical rerun is byte-identical.
    RunResult s2 = runWorkload(Design::d1b4VL, "saxpy", Scale::small,
                               sam);
    EXPECT_EQ(dumpNoLog(s2), dumpNoLog(s));
}

// --- determinism through the sweep service (TSan via the concurrency
// --- label) ------------------------------------------------------------

TEST(CheckpointDeterminismTest, SweepSaveRestoreIsStableAcrossJobs)
{
    // The acceptance criterion: save at N, restore, run to completion
    // — stats byte-identical to the uninterrupted (save-flow) run,
    // through the sweep service, at one worker and at four.
    std::string dir = scratchDir("sweepdet");
    const char *names[] = {"vvadd", "saxpy"};

    auto sweep = [&](unsigned jobs) {
        SweepServiceOptions o;
        o.jobs = jobs;
        SweepService svc(o);

        std::vector<std::future<RunResult>> saves;
        for (const char *n : names) {
            SweepJob job{Design::d1b4VL, n, Scale::tiny, {}};
            job.opts.checkpoint.savePath =
                dir + "/" + n + "_j" + std::to_string(jobs) + ".bvl";
            job.opts.checkpoint.ffInsts = 100;
            saves.push_back(svc.submit(job));
        }
        std::vector<std::string> rows;
        for (auto &f : saves) {
            RunResult r = f.get();
            EXPECT_TRUE(r.ok()) << r.message;
            rows.push_back(dumpNoLog(r));
        }

        std::vector<std::future<RunResult>> restores;
        for (const char *n : names) {
            SweepJob job{Design::d1b4VL, n, Scale::tiny, {}};
            job.opts.checkpoint.restorePath =
                dir + "/" + n + "_j" + std::to_string(jobs) + ".bvl";
            job.opts.checkpoint.ffInsts = 100;
            restores.push_back(svc.submit(job));
        }
        for (unsigned i = 0; i < restores.size(); ++i) {
            RunResult r = restores[i].get();
            EXPECT_TRUE(r.ok()) << r.message;
            EXPECT_EQ(dumpNoLog(r), rows[i])
                << names[i] << " at jobs=" << jobs;
        }
        return rows;
    };

    auto serial = sweep(1);
    auto parallel = sweep(4);
    EXPECT_EQ(serial, parallel);
}

TEST(CheckpointDeterminismTest, SampledSweepIsStableAcrossJobs)
{
    auto sweep = [&](unsigned jobs) {
        SweepServiceOptions o;
        o.jobs = jobs;
        SweepService svc(o);
        std::vector<std::future<RunResult>> futs;
        for (const char *n : {"vvadd", "saxpy", "mmult"}) {
            SweepJob job{Design::d1b4VL, n, Scale::tiny, {}};
            job.opts.sampling = {100, 20, 50, 3};
            futs.push_back(svc.submit(job));
        }
        std::vector<std::string> rows;
        for (auto &f : futs) {
            RunResult r = f.get();
            EXPECT_TRUE(r.ok()) << r.message;
            EXPECT_TRUE(r.verified);
            rows.push_back(dumpNoLog(r));
        }
        return rows;
    };
    EXPECT_EQ(sweep(1), sweep(4));
}

} // namespace
} // namespace bvl
