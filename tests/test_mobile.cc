/**
 * @file
 * Mobile kernel tier tests (DESIGN.md §18).
 *
 * Three suites, landing in two ctest labels:
 *
 *  - MobileLockstepTest ("*Lockstep*" -> checker label): every mobile
 *    kernel at Scale::small under the lockstep checker, clean and with
 *    a recoverable fault plan injected. The mobile kernels are the
 *    only users of the widening/narrowing ops and of byte/halfword
 *    element widths, so this is where a timed-vs-functional divergence
 *    in those paths would surface.
 *
 *  - MobileVmuPatternTest (workloads label): each kernel's VMU
 *    access-pattern signature (unit / strided / indexed line counts)
 *    on the vLITTLE design, and the taxonomy's completeness: every
 *    line request is classified exactly once.
 *
 *  - WorkloadRegistryTest (workloads label): the duplicate-name fatal
 *    diagnostic and the mobile tier's registration.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "sim/logging.hh"
#include "soc/run_driver.hh"
#include "soc/soc.hh"
#include "workloads/workload.hh"

namespace bvl
{
namespace
{

const char *const mobileKernels[] = {
    "idct8", "ycbcr", "conv2d", "gemm8", "bytescan",
};

/** Recoverable fault plan, rotated per kernel so the whole tier
 *  collectively exercises memory delays, VCU stalls and VMU drops
 *  (same shapes as test_cosim.cc's plans). */
FaultSpec
mobileFaultPlan(int variant)
{
    FaultSpec f;
    f.enabled = true;
    f.seed = 901 + variant;
    switch (variant % 3) {
      case 0:
        f.memDelayProb = 0.05;
        f.cacheDelayProb = 0.1;
        break;
      case 1:
        f.vcuStallProb = 0.05;
        f.vcuStallCycles = 12;
        f.script.push_back({20000, FaultKind::vcuStall, 40});
        break;
      default:
        // Deeper retry budget than the cosim plan: small-scale mobile
        // kernels issue enough line requests that 4 consecutive drops
        // at p=0.1 (one lost request per ~10k) becomes likely.
        f.vmuDropProb = 0.1;
        f.vmuMaxRetries = 8;
        f.vmuRetryDelay = 16;
        f.script.push_back({0, FaultKind::vmuDrop, 0});
        break;
    }
    return f;
}

class MobileLockstepTest : public ::testing::TestWithParam<std::string>
{};

TEST_P(MobileLockstepTest, CleanRunRetiresMatchTheModel)
{
    RunOptions opts;
    opts.check.lockstep = true;
    opts.check.invariants = true;

    RunResult r =
        runWorkload(Design::d1b4VL, GetParam(), Scale::small, opts);
    ASSERT_EQ(r.status, RunStatus::ok) << r.message << "\n" << r.log;
    EXPECT_TRUE(r.verified);
    EXPECT_GT(r.stat("check.retires"), 0u);
    EXPECT_EQ(r.stat("check.divergences"), 0u);
    EXPECT_GT(r.stat("check.uops"), 0u);
}

TEST_P(MobileLockstepTest, FaultedRunRetiresMatchTheModel)
{
    // Variant keyed to the kernel's suite position so each plan shape
    // is exercised by at least one kernel, deterministically.
    const auto *begin = std::begin(mobileKernels);
    const auto *end = std::end(mobileKernels);
    int variant = static_cast<int>(
        std::find(begin, end, GetParam()) - begin);

    RunOptions opts;
    opts.faults = mobileFaultPlan(variant);
    opts.check.lockstep = true;
    opts.check.invariants = true;

    RunResult r =
        runWorkload(Design::d1b4VL, GetParam(), Scale::small, opts);
    ASSERT_EQ(r.status, RunStatus::ok) << r.message << "\n" << r.log;
    EXPECT_TRUE(r.verified);
    EXPECT_GT(r.stat("check.retires"), 0u);
    EXPECT_EQ(r.stat("check.divergences"), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, MobileLockstepTest,
    ::testing::ValuesIn(std::vector<std::string>(
        std::begin(mobileKernels), std::end(mobileKernels))));

/** Expected access-pattern classes per kernel (DESIGN.md §18). */
struct PatternCase
{
    const char *name;
    bool unit, strided, indexed;
};

class MobileVmuPatternTest : public ::testing::TestWithParam<PatternCase>
{};

TEST_P(MobileVmuPatternTest, AccessPatternSignature)
{
    const PatternCase &c = GetParam();
    RunResult r = runWorkload(Design::d1b4VL, c.name, Scale::tiny, {});
    ASSERT_EQ(r.status, RunStatus::ok) << r.message << "\n" << r.log;
    ASSERT_TRUE(r.verified);

    std::uint64_t unit = r.stat("vlittle.unitLines");
    std::uint64_t strided = r.stat("vlittle.stridedLines");
    std::uint64_t indexed = r.stat("vlittle.indexedLines");

    EXPECT_EQ(unit > 0, c.unit) << "unitLines=" << unit;
    EXPECT_EQ(strided > 0, c.strided) << "stridedLines=" << strided;
    EXPECT_EQ(indexed > 0, c.indexed) << "indexedLines=" << indexed;

    // The taxonomy partitions line requests: every VMU line request
    // is classified under exactly one pattern class.
    EXPECT_EQ(unit + strided + indexed,
              r.stat("vlittle.loadLineReqs") +
                  r.stat("vlittle.storeLineReqs"));
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, MobileVmuPatternTest,
    ::testing::Values(
        // idct8: strided row/col passes + indexed dezigzag gather
        PatternCase{"idct8", true, true, true},
        // ycbcr: strided chroma deinterleave + indexed clamp LUT;
        // every access is strided (pixel interleave) or indexed, so
        // no unit-stride lines at all
        PatternCase{"ycbcr", false, true, true},
        // conv2d: unit-stride hpass + column-strided vpass
        PatternCase{"conv2d", true, true, false},
        // gemm8 and bytescan are pure unit-stride
        PatternCase{"gemm8", true, false, false},
        PatternCase{"bytescan", true, false, false}),
    [](const auto &info) { return std::string(info.param.name); });

/** Minimal concrete workload used to provoke registry diagnostics. */
class StubWorkload : public Workload
{
  public:
    explicit StubWorkload(std::string n) : n(std::move(n)) {}
    std::string name() const override { return n; }
    bool isDataParallel() const override { return true; }
    void init(BackingStore &) override {}
    ProgramPtr scalarProgram() override
    {
        Asm a(n);
        a.halt();
        auto p = a.finish();
        p->setTextBase(nextTextBase());
        return p;
    }
    ProgArgs fullRangeArgs() const override { return {}; }
    TaskGraph taskGraph() override { return {}; }
    bool verify(const BackingStore &) const override { return true; }

  private:
    std::string n;
};

TEST(WorkloadRegistryTest, DuplicateNameIsFatalAndNamesTheCulprit)
{
    std::vector<WorkloadPtr> suite;
    suite.push_back(std::make_unique<StubWorkload>("alpha"));
    suite.push_back(std::make_unique<StubWorkload>("dupname"));
    suite.push_back(std::make_unique<StubWorkload>("dupname"));
    try {
        checkUniqueNames(suite);
        FAIL() << "duplicate name was not diagnosed";
    } catch (const SimFatalError &e) {
        EXPECT_NE(std::string(e.what()).find("dupname"),
                  std::string::npos)
            << "diagnostic does not name the duplicate: " << e.what();
    }
}

TEST(WorkloadRegistryTest, UniqueNamesPass)
{
    std::vector<WorkloadPtr> suite;
    suite.push_back(std::make_unique<StubWorkload>("alpha"));
    suite.push_back(std::make_unique<StubWorkload>("beta"));
    EXPECT_NO_THROW(checkUniqueNames(suite));
}

TEST(WorkloadRegistryTest, MobileTierIsRegistered)
{
    auto names = allWorkloadNames();
    for (const char *k : mobileKernels) {
        EXPECT_NE(std::find(names.begin(), names.end(), k), names.end())
            << k << " missing from the registry";
        auto w = makeWorkload(k, Scale::tiny);
        ASSERT_NE(w, nullptr) << k;
        EXPECT_TRUE(w->isDataParallel()) << k;
        EXPECT_NE(w->vectorProgram(), nullptr)
            << k << " has no vectorized program";
    }
}

} // namespace
} // namespace bvl
