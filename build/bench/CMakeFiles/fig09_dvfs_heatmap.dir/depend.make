# Empty dependencies file for fig09_dvfs_heatmap.
# This may be replaced when dependencies are built.
