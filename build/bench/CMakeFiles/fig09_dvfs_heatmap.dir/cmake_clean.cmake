file(REMOVE_RECURSE
  "CMakeFiles/fig09_dvfs_heatmap.dir/fig09_dvfs_heatmap.cc.o"
  "CMakeFiles/fig09_dvfs_heatmap.dir/fig09_dvfs_heatmap.cc.o.d"
  "fig09_dvfs_heatmap"
  "fig09_dvfs_heatmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_dvfs_heatmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
