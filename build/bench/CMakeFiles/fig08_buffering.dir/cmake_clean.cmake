file(REMOVE_RECURSE
  "CMakeFiles/fig08_buffering.dir/fig08_buffering.cc.o"
  "CMakeFiles/fig08_buffering.dir/fig08_buffering.cc.o.d"
  "fig08_buffering"
  "fig08_buffering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_buffering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
