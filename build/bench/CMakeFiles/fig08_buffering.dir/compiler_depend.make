# Empty compiler generated dependencies file for fig08_buffering.
# This may be replaced when dependencies are built.
