file(REMOVE_RECURSE
  "CMakeFiles/fig06_dreq.dir/fig06_dreq.cc.o"
  "CMakeFiles/fig06_dreq.dir/fig06_dreq.cc.o.d"
  "fig06_dreq"
  "fig06_dreq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_dreq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
