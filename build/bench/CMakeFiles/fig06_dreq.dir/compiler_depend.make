# Empty compiler generated dependencies file for fig06_dreq.
# This may be replaced when dependencies are built.
