# Empty compiler generated dependencies file for fig05_ifetch.
# This may be replaced when dependencies are built.
