file(REMOVE_RECURSE
  "CMakeFiles/fig05_ifetch.dir/fig05_ifetch.cc.o"
  "CMakeFiles/fig05_ifetch.dir/fig05_ifetch.cc.o.d"
  "fig05_ifetch"
  "fig05_ifetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_ifetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
