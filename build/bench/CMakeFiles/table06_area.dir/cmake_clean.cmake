file(REMOVE_RECURSE
  "CMakeFiles/table06_area.dir/table06_area.cc.o"
  "CMakeFiles/table06_area.dir/table06_area.cc.o.d"
  "table06_area"
  "table06_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table06_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
