# Empty compiler generated dependencies file for table06_area.
# This may be replaced when dependencies are built.
