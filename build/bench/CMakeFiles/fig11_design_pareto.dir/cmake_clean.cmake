file(REMOVE_RECURSE
  "CMakeFiles/fig11_design_pareto.dir/fig11_design_pareto.cc.o"
  "CMakeFiles/fig11_design_pareto.dir/fig11_design_pareto.cc.o.d"
  "fig11_design_pareto"
  "fig11_design_pareto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_design_pareto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
