# Empty dependencies file for fig11_design_pareto.
# This may be replaced when dependencies are built.
