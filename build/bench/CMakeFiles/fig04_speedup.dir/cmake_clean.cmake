file(REMOVE_RECURSE
  "CMakeFiles/fig04_speedup.dir/fig04_speedup.cc.o"
  "CMakeFiles/fig04_speedup.dir/fig04_speedup.cc.o.d"
  "fig04_speedup"
  "fig04_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
