# Empty dependencies file for fig04_speedup.
# This may be replaced when dependencies are built.
