file(REMOVE_RECURSE
  "CMakeFiles/fig10_vf_pareto.dir/fig10_vf_pareto.cc.o"
  "CMakeFiles/fig10_vf_pareto.dir/fig10_vf_pareto.cc.o.d"
  "fig10_vf_pareto"
  "fig10_vf_pareto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_vf_pareto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
