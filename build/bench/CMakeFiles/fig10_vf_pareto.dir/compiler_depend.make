# Empty compiler generated dependencies file for fig10_vf_pareto.
# This may be replaced when dependencies are built.
