file(REMOVE_RECURSE
  "libbvl.a"
)
