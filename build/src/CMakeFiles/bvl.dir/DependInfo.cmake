
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/area/area_model.cc" "src/CMakeFiles/bvl.dir/area/area_model.cc.o" "gcc" "src/CMakeFiles/bvl.dir/area/area_model.cc.o.d"
  "/root/repo/src/core/lane.cc" "src/CMakeFiles/bvl.dir/core/lane.cc.o" "gcc" "src/CMakeFiles/bvl.dir/core/lane.cc.o.d"
  "/root/repo/src/core/vlittle_engine.cc" "src/CMakeFiles/bvl.dir/core/vlittle_engine.cc.o" "gcc" "src/CMakeFiles/bvl.dir/core/vlittle_engine.cc.o.d"
  "/root/repo/src/cpu/big_core.cc" "src/CMakeFiles/bvl.dir/cpu/big_core.cc.o" "gcc" "src/CMakeFiles/bvl.dir/cpu/big_core.cc.o.d"
  "/root/repo/src/cpu/little_core.cc" "src/CMakeFiles/bvl.dir/cpu/little_core.cc.o" "gcc" "src/CMakeFiles/bvl.dir/cpu/little_core.cc.o.d"
  "/root/repo/src/isa/arch_state.cc" "src/CMakeFiles/bvl.dir/isa/arch_state.cc.o" "gcc" "src/CMakeFiles/bvl.dir/isa/arch_state.cc.o.d"
  "/root/repo/src/isa/opcode.cc" "src/CMakeFiles/bvl.dir/isa/opcode.cc.o" "gcc" "src/CMakeFiles/bvl.dir/isa/opcode.cc.o.d"
  "/root/repo/src/isa/program.cc" "src/CMakeFiles/bvl.dir/isa/program.cc.o" "gcc" "src/CMakeFiles/bvl.dir/isa/program.cc.o.d"
  "/root/repo/src/mem/cache.cc" "src/CMakeFiles/bvl.dir/mem/cache.cc.o" "gcc" "src/CMakeFiles/bvl.dir/mem/cache.cc.o.d"
  "/root/repo/src/mem/mem_system.cc" "src/CMakeFiles/bvl.dir/mem/mem_system.cc.o" "gcc" "src/CMakeFiles/bvl.dir/mem/mem_system.cc.o.d"
  "/root/repo/src/power/power_model.cc" "src/CMakeFiles/bvl.dir/power/power_model.cc.o" "gcc" "src/CMakeFiles/bvl.dir/power/power_model.cc.o.d"
  "/root/repo/src/runtime/ws_runtime.cc" "src/CMakeFiles/bvl.dir/runtime/ws_runtime.cc.o" "gcc" "src/CMakeFiles/bvl.dir/runtime/ws_runtime.cc.o.d"
  "/root/repo/src/sim/logging.cc" "src/CMakeFiles/bvl.dir/sim/logging.cc.o" "gcc" "src/CMakeFiles/bvl.dir/sim/logging.cc.o.d"
  "/root/repo/src/soc/run_driver.cc" "src/CMakeFiles/bvl.dir/soc/run_driver.cc.o" "gcc" "src/CMakeFiles/bvl.dir/soc/run_driver.cc.o.d"
  "/root/repo/src/soc/soc.cc" "src/CMakeFiles/bvl.dir/soc/soc.cc.o" "gcc" "src/CMakeFiles/bvl.dir/soc/soc.cc.o.d"
  "/root/repo/src/workloads/apps_compute.cc" "src/CMakeFiles/bvl.dir/workloads/apps_compute.cc.o" "gcc" "src/CMakeFiles/bvl.dir/workloads/apps_compute.cc.o.d"
  "/root/repo/src/workloads/apps_stencil.cc" "src/CMakeFiles/bvl.dir/workloads/apps_stencil.cc.o" "gcc" "src/CMakeFiles/bvl.dir/workloads/apps_stencil.cc.o.d"
  "/root/repo/src/workloads/graph.cc" "src/CMakeFiles/bvl.dir/workloads/graph.cc.o" "gcc" "src/CMakeFiles/bvl.dir/workloads/graph.cc.o.d"
  "/root/repo/src/workloads/kernels.cc" "src/CMakeFiles/bvl.dir/workloads/kernels.cc.o" "gcc" "src/CMakeFiles/bvl.dir/workloads/kernels.cc.o.d"
  "/root/repo/src/workloads/ligra_iterative.cc" "src/CMakeFiles/bvl.dir/workloads/ligra_iterative.cc.o" "gcc" "src/CMakeFiles/bvl.dir/workloads/ligra_iterative.cc.o.d"
  "/root/repo/src/workloads/ligra_traversal.cc" "src/CMakeFiles/bvl.dir/workloads/ligra_traversal.cc.o" "gcc" "src/CMakeFiles/bvl.dir/workloads/ligra_traversal.cc.o.d"
  "/root/repo/src/workloads/progutil.cc" "src/CMakeFiles/bvl.dir/workloads/progutil.cc.o" "gcc" "src/CMakeFiles/bvl.dir/workloads/progutil.cc.o.d"
  "/root/repo/src/workloads/sw.cc" "src/CMakeFiles/bvl.dir/workloads/sw.cc.o" "gcc" "src/CMakeFiles/bvl.dir/workloads/sw.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/CMakeFiles/bvl.dir/workloads/workload.cc.o" "gcc" "src/CMakeFiles/bvl.dir/workloads/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
