# Empty dependencies file for bvl.
# This may be replaced when dependencies are built.
