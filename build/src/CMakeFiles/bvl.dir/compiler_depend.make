# Empty compiler generated dependencies file for bvl.
# This may be replaced when dependencies are built.
