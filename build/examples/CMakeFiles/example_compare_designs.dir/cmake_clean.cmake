file(REMOVE_RECURSE
  "CMakeFiles/example_compare_designs.dir/compare_designs.cc.o"
  "CMakeFiles/example_compare_designs.dir/compare_designs.cc.o.d"
  "example_compare_designs"
  "example_compare_designs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_compare_designs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
