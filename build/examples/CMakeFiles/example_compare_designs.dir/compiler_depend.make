# Empty compiler generated dependencies file for example_compare_designs.
# This may be replaced when dependencies are built.
