file(REMOVE_RECURSE
  "CMakeFiles/example_dvfs_explore.dir/dvfs_explore.cc.o"
  "CMakeFiles/example_dvfs_explore.dir/dvfs_explore.cc.o.d"
  "example_dvfs_explore"
  "example_dvfs_explore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_dvfs_explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
