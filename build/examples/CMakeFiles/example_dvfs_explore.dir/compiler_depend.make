# Empty compiler generated dependencies file for example_dvfs_explore.
# This may be replaced when dependencies are built.
