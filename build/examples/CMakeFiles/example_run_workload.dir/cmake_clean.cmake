file(REMOVE_RECURSE
  "CMakeFiles/example_run_workload.dir/run_workload.cc.o"
  "CMakeFiles/example_run_workload.dir/run_workload.cc.o.d"
  "example_run_workload"
  "example_run_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_run_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
