# Empty compiler generated dependencies file for example_run_workload.
# This may be replaced when dependencies are built.
