
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_cache_properties.cc" "tests/CMakeFiles/bvl_tests.dir/test_cache_properties.cc.o" "gcc" "tests/CMakeFiles/bvl_tests.dir/test_cache_properties.cc.o.d"
  "/root/repo/tests/test_cores.cc" "tests/CMakeFiles/bvl_tests.dir/test_cores.cc.o" "gcc" "tests/CMakeFiles/bvl_tests.dir/test_cores.cc.o.d"
  "/root/repo/tests/test_cosim.cc" "tests/CMakeFiles/bvl_tests.dir/test_cosim.cc.o" "gcc" "tests/CMakeFiles/bvl_tests.dir/test_cosim.cc.o.d"
  "/root/repo/tests/test_engine.cc" "tests/CMakeFiles/bvl_tests.dir/test_engine.cc.o" "gcc" "tests/CMakeFiles/bvl_tests.dir/test_engine.cc.o.d"
  "/root/repo/tests/test_engine_ordering.cc" "tests/CMakeFiles/bvl_tests.dir/test_engine_ordering.cc.o" "gcc" "tests/CMakeFiles/bvl_tests.dir/test_engine_ordering.cc.o.d"
  "/root/repo/tests/test_frontend.cc" "tests/CMakeFiles/bvl_tests.dir/test_frontend.cc.o" "gcc" "tests/CMakeFiles/bvl_tests.dir/test_frontend.cc.o.d"
  "/root/repo/tests/test_isa.cc" "tests/CMakeFiles/bvl_tests.dir/test_isa.cc.o" "gcc" "tests/CMakeFiles/bvl_tests.dir/test_isa.cc.o.d"
  "/root/repo/tests/test_mem.cc" "tests/CMakeFiles/bvl_tests.dir/test_mem.cc.o" "gcc" "tests/CMakeFiles/bvl_tests.dir/test_mem.cc.o.d"
  "/root/repo/tests/test_power_area.cc" "tests/CMakeFiles/bvl_tests.dir/test_power_area.cc.o" "gcc" "tests/CMakeFiles/bvl_tests.dir/test_power_area.cc.o.d"
  "/root/repo/tests/test_runtime.cc" "tests/CMakeFiles/bvl_tests.dir/test_runtime.cc.o" "gcc" "tests/CMakeFiles/bvl_tests.dir/test_runtime.cc.o.d"
  "/root/repo/tests/test_sim.cc" "tests/CMakeFiles/bvl_tests.dir/test_sim.cc.o" "gcc" "tests/CMakeFiles/bvl_tests.dir/test_sim.cc.o.d"
  "/root/repo/tests/test_workloads.cc" "tests/CMakeFiles/bvl_tests.dir/test_workloads.cc.o" "gcc" "tests/CMakeFiles/bvl_tests.dir/test_workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bvl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
