# Empty compiler generated dependencies file for bvl_tests.
# This may be replaced when dependencies are built.
