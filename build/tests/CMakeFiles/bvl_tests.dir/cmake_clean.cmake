file(REMOVE_RECURSE
  "CMakeFiles/bvl_tests.dir/test_cache_properties.cc.o"
  "CMakeFiles/bvl_tests.dir/test_cache_properties.cc.o.d"
  "CMakeFiles/bvl_tests.dir/test_cores.cc.o"
  "CMakeFiles/bvl_tests.dir/test_cores.cc.o.d"
  "CMakeFiles/bvl_tests.dir/test_cosim.cc.o"
  "CMakeFiles/bvl_tests.dir/test_cosim.cc.o.d"
  "CMakeFiles/bvl_tests.dir/test_engine.cc.o"
  "CMakeFiles/bvl_tests.dir/test_engine.cc.o.d"
  "CMakeFiles/bvl_tests.dir/test_engine_ordering.cc.o"
  "CMakeFiles/bvl_tests.dir/test_engine_ordering.cc.o.d"
  "CMakeFiles/bvl_tests.dir/test_frontend.cc.o"
  "CMakeFiles/bvl_tests.dir/test_frontend.cc.o.d"
  "CMakeFiles/bvl_tests.dir/test_isa.cc.o"
  "CMakeFiles/bvl_tests.dir/test_isa.cc.o.d"
  "CMakeFiles/bvl_tests.dir/test_mem.cc.o"
  "CMakeFiles/bvl_tests.dir/test_mem.cc.o.d"
  "CMakeFiles/bvl_tests.dir/test_power_area.cc.o"
  "CMakeFiles/bvl_tests.dir/test_power_area.cc.o.d"
  "CMakeFiles/bvl_tests.dir/test_runtime.cc.o"
  "CMakeFiles/bvl_tests.dir/test_runtime.cc.o.d"
  "CMakeFiles/bvl_tests.dir/test_sim.cc.o"
  "CMakeFiles/bvl_tests.dir/test_sim.cc.o.d"
  "CMakeFiles/bvl_tests.dir/test_workloads.cc.o"
  "CMakeFiles/bvl_tests.dir/test_workloads.cc.o.d"
  "bvl_tests"
  "bvl_tests.pdb"
  "bvl_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bvl_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
