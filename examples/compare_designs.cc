/**
 * @file
 * Run one workload from the built-in suite on all seven evaluated
 * systems and print a Figure-4-style speedup row. The seven runs are
 * independent simulations, so they go through the crash-safe sweep
 * service (BVL_JOBS threads; journal/cache via BVL_SWEEP_DIR /
 * BVL_CACHE_DIR) and are printed in submission order.
 *
 *   $ ./example_compare_designs [workload] [tiny|small|medium]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>

#include "sweep/service/service.hh"

using namespace bvl;

int
main(int argc, char **argv)
{
    setVerbose(false);
    std::string name = argc > 1 ? argv[1] : "saxpy";
    Scale scale = Scale::small;
    if (argc > 2) {
        scale = !std::strcmp(argv[2], "tiny") ? Scale::tiny :
                !std::strcmp(argv[2], "medium") ? Scale::medium
                                                : Scale::small;
    }

    const Design others[] = {Design::d1b, Design::d1bIV, Design::d1b4L,
                             Design::d1bIV4L, Design::d1bDV,
                             Design::d1b4VL};

    // All seven runs are submitted before any result is consumed, so
    // they execute concurrently; futures resolve in submission order.
    // The journal makes a rerun after a crash (or a warm rerun) replay
    // completed results instead of re-simulating.
    SweepServiceOptions sopts;
    const char *sweepDir = std::getenv("BVL_SWEEP_DIR");
    sopts.journalPath =
        std::string(sweepDir && *sweepDir ? sweepDir : ".bvl-sweep") +
        "/compare_designs.journal.jsonl";
    if (const char *c = std::getenv("BVL_CACHE_DIR"); c && *c)
        sopts.cacheDir = c;
    SweepService pool(sopts);
    SweepService::installSignalHandlers();
    auto baseFut = pool.submit({Design::d1L, name, scale, {}});
    std::vector<std::future<RunResult>> futures;
    for (Design d : others)
        futures.push_back(pool.submit({d, name, scale, {}}));

    try {
        auto base = baseFut.get();
        if (!base.ok()) {
            std::fprintf(stderr, "baseline failed (%s): %s\n",
                         runStatusName(base.status),
                         base.message.c_str());
            return 1;
        }

        std::printf("%-10s %12s %10s %14s\n", "design", "time(ns)",
                    "speedup", "status");
        std::printf("%-10s %12.0f %10.2f %14s\n", "1L", base.ns, 1.0,
                    runStatusName(base.status));
        for (unsigned i = 0; i < futures.size(); ++i) {
            auto r = futures[i].get();
            // A failed design is reported and skipped, not fatal: the
            // remaining designs still produce their rows.
            if (r.ok())
                std::printf("%-10s %12.0f %10.2f %14s\n",
                            designName(others[i]), r.ns, base.ns / r.ns,
                            runStatusName(r.status));
            else
                std::printf("%-10s %12s %10s %14s\n",
                            designName(others[i]), "-", "-",
                            runStatusName(r.status));
        }
    } catch (const SweepInterrupted &e) {
        // Completed runs are journaled; a rerun resumes from them.
        std::fprintf(stderr, "%s\n", e.what());
        return exitResumable;
    }
    std::fprintf(stderr, "%s\n", pool.summaryLine().c_str());
    return 0;
}
