/**
 * @file
 * Run one workload from the built-in suite on all seven evaluated
 * systems and print a Figure-4-style speedup row.
 *
 *   $ ./example_compare_designs [workload] [tiny|small|medium]
 */

#include <cstdio>
#include <cstring>

#include "soc/run_driver.hh"

using namespace bvl;

int
main(int argc, char **argv)
{
    setVerbose(false);
    std::string name = argc > 1 ? argv[1] : "saxpy";
    Scale scale = Scale::small;
    if (argc > 2) {
        scale = !std::strcmp(argv[2], "tiny") ? Scale::tiny :
                !std::strcmp(argv[2], "medium") ? Scale::medium
                                                : Scale::small;
    }

    auto base = runWorkload(Design::d1L, name, scale);
    if (!base.ok()) {
        std::fprintf(stderr, "baseline failed (%s): %s\n",
                     runStatusName(base.status), base.message.c_str());
        return 1;
    }

    std::printf("%-10s %12s %10s %14s\n", "design", "time(ns)",
                "speedup", "status");
    std::printf("%-10s %12.0f %10.2f %14s\n", "1L", base.ns, 1.0,
                runStatusName(base.status));
    for (Design d : {Design::d1b, Design::d1bIV, Design::d1b4L,
                     Design::d1bIV4L, Design::d1bDV, Design::d1b4VL}) {
        auto r = runWorkload(d, name, scale);
        // A failed design is reported and skipped, not fatal: the
        // remaining designs still produce their rows.
        if (r.ok())
            std::printf("%-10s %12.0f %10.2f %14s\n", designName(d),
                        r.ns, base.ns / r.ns, runStatusName(r.status));
        else
            std::printf("%-10s %12s %10s %14s\n", designName(d), "-",
                        "-", runStatusName(r.status));
    }
    return 0;
}
