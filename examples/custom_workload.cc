/**
 * @file
 * Writing your own workload: implement the Workload interface (data
 * init, scalar + vector programs, task decomposition, verification)
 * and run it on any of the seven systems through the standard driver.
 * The example computes a dot product with a vector reduction.
 *
 *   $ ./example_custom_workload
 */

#include <cstdio>

#include "soc/run_driver.hh"
#include "workloads/common.hh"

using namespace bvl;

namespace
{

/** dot = sum a[i] * b[i] over int32 vectors. */
class DotProductWorkload : public WorkloadBase
{
  public:
    explicit DotProductWorkload(unsigned n) : n(n) {}

    std::string name() const override { return "dotprod"; }
    bool isDataParallel() const override { return true; }

    void
    init(BackingStore &mem) override
    {
        want = 0;
        for (unsigned i = 0; i < n; ++i) {
            std::int32_t a = (i * 7) % 100, b = (i * 13) % 50;
            mem.writeT<std::int32_t>(regionA + 4ull * i, a);
            mem.writeT<std::int32_t>(regionB + 4ull * i, b);
            want += std::int64_t(a) * b;
        }
    }

    ProgramPtr
    scalarProgram() override
    {
        Asm a("dot.scalar");
        a.li(xreg(2), regionA).li(xreg(3), regionB).li(xreg(20), 0);
        emitScalarRangeLoop(a, xreg(5), "loop", [&] {
            a.slli(xreg(6), xreg(5), 2)
             .add(xreg(7), xreg(2), xreg(6)).lw(xreg(8), xreg(7))
             .add(xreg(7), xreg(3), xreg(6)).lw(xreg(9), xreg(7))
             .mul(xreg(8), xreg(8), xreg(9))
             .add(xreg(20), xreg(20), xreg(8));
        });
        a.li(xreg(28), regionE).sd(xreg(20), xreg(28)).halt();
        return finishProg(a);
    }

    ProgramPtr
    vectorProgram() override
    {
        // Per strip: elementwise multiply, vector reduction, scalar
        // accumulate. Exercises vredsum -> vmv.x.s (a scalar-writing
        // vector instruction that holds the big core's ROB head until
        // the engine responds over the ring).
        Asm a("dot.vector");
        a.li(xreg(2), regionA).li(xreg(3), regionB).li(xreg(20), 0);
        emitStripmineLoop(a, 4, "loop", [&] {
            a.slli(xreg(28), xreg(14), 2)
             .add(xreg(29), xreg(2), xreg(28)).vle(vreg(1), xreg(29), 4)
             .add(xreg(29), xreg(3), xreg(28)).vle(vreg(2), xreg(29), 4)
             .vv(Op::vmul, vreg(3), vreg(1), vreg(2))
             .vmv_s_x(vreg(4), xreg(0))
             .vv(Op::vredsum, vreg(5), vreg(4), vreg(3))
             .vmv_x_s(xreg(8), vreg(5))
             .add(xreg(20), xreg(20), xreg(8));
        });
        a.li(xreg(28), regionE).sd(xreg(20), xreg(28)).halt();
        return finishProg(a);
    }

    ProgArgs fullRangeArgs() const override
    { return {{xreg(10), 0}, {xreg(11), n}}; }

    TaskGraph
    taskGraph() override
    {
        // Chunked partial sums would need an accumulation phase; for
        // the example, a single task keeps it simple.
        TaskGraph g;
        g.phases.emplace_back();
        Task t;
        t.scalar = scalarProgram();
        t.vector = vectorProgram();
        t.args = fullRangeArgs();
        g.phases.back().tasks.push_back(std::move(t));
        return g;
    }

    bool
    verify(const BackingStore &mem) const override
    {
        return mem.readT<std::int64_t>(regionE) ==
               static_cast<std::int64_t>(want);
    }

  private:
    unsigned n;
    std::int64_t want = 0;
};

} // namespace

int
main()
{
    setVerbose(false);
    DotProductWorkload w(4096);
    for (Design d : {Design::d1L, Design::d1b, Design::d1b4VL,
                     Design::d1bDV}) {
        auto r = runWorkload(d, w);
        std::printf("%-8s %10.0f ns  verified=%s\n", designName(d),
                    r.ns, r.verified ? "yes" : "NO");
    }
    return 0;
}
