/**
 * @file
 * Command-line driver: run any suite workload on any design at any
 * scale and frequency, optionally dumping the full statistics table —
 * the quickest way to poke at the simulator.
 *
 *   $ ./example_run_workload --workload saxpy --design 1b-4VL \
 *         --scale small --big-ghz 1.0 --little-ghz 1.2 --stats
 *   $ ./example_run_workload --list
 *
 * Checkpointing and sampled simulation (DESIGN.md §15/§16):
 *
 *   $ ./example_run_workload --checkpoint ckpt.bvl --ff 20000
 *   $ ./example_run_workload --restore ckpt.bvl --ff 20000
 *   $ ./example_run_workload --restore ckpt.bvl --restore-strict
 *   $ ./example_run_workload --ckpt-farm --ff 20000
 *   $ ./example_run_workload --sample 20000:1000:4000:8
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>

#include "soc/run_driver.hh"

using namespace bvl;

namespace
{

std::optional<Design>
parseDesign(const std::string &s)
{
    for (Design d : {Design::d1L, Design::d1b, Design::d1bIV,
                     Design::d1b4L, Design::d1bIV4L, Design::d1bDV,
                     Design::d1b4VL}) {
        if (s == designName(d))
            return d;
    }
    return std::nullopt;
}

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--workload NAME] [--design D] "
                 "[--scale tiny|small|medium]\n"
                 "          [--big-ghz F] [--little-ghz F] "
                 "[--limit-ns NS] [--stats]\n"
                 "          [--no-verify] [--list]\n"
                 "          [--trace FILE] [--trace-cats CSV] "
                 "[--trace-start NS] [--trace-stop NS]\n"
                 "          [--stat-sample FILE] "
                 "[--sample-interval NS]\n"
                 "          [--checkpoint FILE] [--restore FILE] "
                 "[--restore-strict] [--ff N]\n"
                 "          [--ckpt-farm] [--ckpt-dir DIR]\n"
                 "          [--sample FF:WARM:DETAIL:PERIODS]\n"
                 "designs: 1L 1b 1bIV 1b-4L 1bIV-4L 1bDV 1b-4VL\n"
                 "trace cats: big,core,vcu,lane,vxu,vmu,cache,dram "
                 "(default all)\n",
                 argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    std::string workload = "saxpy";
    Design design = Design::d1b4VL;
    Scale scale = Scale::small;
    RunOptions opts;
    bool dumpStats = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage(argv[0]);
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "--list") {
            for (const auto &n : allWorkloadNames())
                std::printf("%s\n", n.c_str());
            return 0;
        } else if (arg == "--workload") {
            workload = next();
        } else if (arg == "--design") {
            auto d = parseDesign(next());
            if (!d) {
                usage(argv[0]);
                return 1;
            }
            design = *d;
        } else if (arg == "--scale") {
            std::string s = next();
            scale = s == "tiny" ? Scale::tiny :
                    s == "medium" ? Scale::medium : Scale::small;
        } else if (arg == "--big-ghz") {
            opts.bigGhz = std::atof(next());
        } else if (arg == "--little-ghz") {
            opts.littleGhz = std::atof(next());
        } else if (arg == "--stats") {
            dumpStats = true;
        } else if (arg == "--no-verify") {
            opts.verifyResult = false;
        } else if (arg == "--limit-ns") {
            opts.limitNs = std::atof(next());
        } else if (arg == "--trace") {
            opts.trace.path = next();
        } else if (arg == "--trace-cats") {
            opts.trace.categories = parseTraceCats(next());
        } else if (arg == "--trace-start") {
            opts.trace.startNs = std::atof(next());
        } else if (arg == "--trace-stop") {
            opts.trace.stopNs = std::atof(next());
        } else if (arg == "--stat-sample") {
            opts.trace.samplePath = next();
        } else if (arg == "--sample-interval") {
            opts.trace.sampleIntervalNs = std::atof(next());
        } else if (arg == "--checkpoint") {
            opts.checkpoint.savePath = next();
        } else if (arg == "--restore") {
            opts.checkpoint.restorePath = next();
        } else if (arg == "--restore-strict") {
            opts.checkpoint.strict = true;
        } else if (arg == "--ckpt-farm") {
            opts.checkpoint.farm = true;
        } else if (arg == "--ckpt-dir") {
            opts.checkpoint.farmDir = next();
        } else if (arg == "--ff") {
            opts.checkpoint.ffInsts = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--sample") {
            // FF:WARM:DETAIL:PERIODS, e.g. 20000:1000:4000:8.
            unsigned long long ff = 0, wu = 0, det = 0, per = 0;
            if (std::sscanf(next(), "%llu:%llu:%llu:%llu", &ff, &wu,
                            &det, &per) != 4) {
                usage(argv[0]);
                return 1;
            }
            opts.sampling.ffInsts = ff;
            opts.sampling.warmupInsts = wu;
            opts.sampling.detailInsts = det;
            opts.sampling.periods = static_cast<unsigned>(per);
        } else {
            usage(argv[0]);
            return 1;
        }
    }

    // Reject contradictory flag combinations up front, each with one
    // actionable line, instead of letting the engine fatal() later.
    const auto &ck = opts.checkpoint;
    if (!ck.savePath.empty() && !ck.restorePath.empty()) {
        std::fprintf(stderr, "--checkpoint and --restore are mutually "
                             "exclusive: save in one run, restore in "
                             "the next\n");
        return 1;
    }
    if (ck.farm && (!ck.savePath.empty() || !ck.restorePath.empty())) {
        std::fprintf(stderr, "--ckpt-farm manages its own entry paths; "
                             "drop --checkpoint/--restore\n");
        return 1;
    }
    if (ck.farm && ck.ffInsts == 0) {
        std::fprintf(stderr, "--ckpt-farm needs --ff N: the prefix "
                             "length is part of the farm entry's "
                             "identity\n");
        return 1;
    }
    if (ck.strict && ck.restorePath.empty()) {
        std::fprintf(stderr, "--restore-strict only constrains "
                             "--restore; add --restore FILE or drop "
                             "it\n");
        return 1;
    }
    if (ck.strict && ck.ffInsts > 0) {
        std::fprintf(stderr, "--restore-strict never re-simulates; "
                             "drop --ff N (or drop --restore-strict "
                             "to allow the fast-forward fallback)\n");
        return 1;
    }

    auto w = makeWorkload(workload, scale);
    if (!w) {
        std::fprintf(stderr, "unknown workload '%s' (try --list)\n",
                     workload.c_str());
        return 1;
    }

    auto r = runWorkload(design, *w, opts);
    // Diagnostics (e.g. a quarantined corrupt checkpoint) are captured
    // into the result by the driver; surface them like a plain run.
    if (!r.log.empty())
        std::fputs(r.log.c_str(), stderr);
    std::printf("workload  %s (%s)\n", r.workload.c_str(),
                w->isDataParallel() ? "data-parallel" : "task-parallel");
    std::printf("design    %s  (big %.1f GHz, little %.1f GHz)\n",
                r.design.c_str(), opts.bigGhz, opts.littleGhz);
    std::printf("time      %.0f ns\n", r.ns);
    std::printf("status    %s\n", runStatusName(r.status));
    if (!r.ok() && !r.message.empty())
        std::printf("%s\n", r.message.c_str());
    if (opts.verifyResult)
        std::printf("verified  %s\n", r.verified ? "yes" : "NO");
    std::printf("ifetch    %llu requests\n",
                (unsigned long long)r.ifetchReqs);
    std::printf("data reqs %llu requests\n",
                (unsigned long long)r.dataReqs);

    if (dumpStats) {
        std::printf("\n-- statistics --\n");
        for (const auto &kv : r.stats)
            if (kv.second != 0)
                std::printf("%-40s %llu\n", kv.first.c_str(),
                            (unsigned long long)kv.second);
    }
    return r.finished && (!opts.verifyResult || r.verified) ? 0 : 1;
}
