/**
 * @file
 * Failure forensics walkthrough: run a deliberately fatal fault plan,
 * write its JSON failure report, then delta-debug the plan down to
 * the minimal set of still-failing injections.
 *
 *   minimize_fault_plan [report.json]
 *
 * When the argument names an existing failure report (or bare replay
 * recipe), its plan is minimized directly. Otherwise a demo run is
 * executed first: a 20-injection plan against vvadd on 1b-4VL where
 * 19 scripted VCU stalls are harmless and one unrecoverable VMU drop
 * kills the run. The report lands at the given path (default
 * ./failure_report.json) and the minimizer isolates the one fatal
 * injection. scripts/ci.sh runs this as its forensics smoke test.
 */

#include <cstdio>
#include <fstream>
#include <string>

#include "sim/check/forensics.hh"
#include "sim/check/minimize.hh"

using namespace bvl;

namespace
{

ReplayRecipe
demoFatalRecipe()
{
    ReplayRecipe rec;
    rec.design = Design::d1b4VL;
    rec.workload = "vvadd";
    rec.scale = Scale::tiny;
    rec.options.watchdogIntervalNs = 10000;
    rec.options.faults.enabled = true;
    rec.options.faults.vmuMaxRetries = 0;
    for (unsigned i = 0; i < 20; ++i) {
        if (i == 13)
            rec.options.faults.script.push_back(
                {0, FaultKind::vmuDrop, 0});
        else
            rec.options.faults.script.push_back(
                {Tick(1000) * i, FaultKind::vcuStall, 5});
    }
    return rec;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string path =
        argc > 1 ? argv[1] : std::string("failure_report.json");

    ReplayRecipe recipe;
    if (std::ifstream(path).good()) {
        std::printf("loading replay recipe from %s\n", path.c_str());
        recipe = loadReplayRecipe(path);
    } else {
        recipe = demoFatalRecipe();
        std::printf("running demo fatal plan: %zu injections, "
                    "%s on %s\n",
                    recipe.options.faults.script.size(),
                    recipe.workload.c_str(),
                    designName(recipe.design));
        ReplayRecipe reported = recipe;
        reported.options.check.invariants = true;
        reported.options.check.forensicsPath = path;
        RunResult r = runWorkload(reported.design, reported.workload,
                                  reported.scale, reported.options);
        std::printf("baseline status: %s\n", runStatusName(r.status));
        if (r.ok()) {
            std::printf("demo plan unexpectedly passed; nothing to "
                        "minimize\n");
            return 1;
        }
        std::printf("report: %s\n", path.c_str());
    }

    MinimizeOutcome out = minimizeFaultPlan(recipe);
    std::printf("target status: %s\n", runStatusName(out.target));
    std::printf("oracle runs: %u\n", out.oracleRuns);
    std::printf("one-minimal: %s\n", out.oneMinimal ? "yes" : "no");
    std::printf("minimal injections: %zu\n",
                out.minimal.options.faults.script.size());
    for (std::size_t i = 0; i < out.keptIndices.size(); ++i) {
        const ScriptedFault &f = out.minimal.options.faults.script[i];
        std::printf("  [%zu] %s at tick %llu (%llu cycles)\n",
                    out.keptIndices[i], faultKindName(f.kind),
                    static_cast<unsigned long long>(f.atTick),
                    static_cast<unsigned long long>(f.cycles));
    }
    return 0;
}
