/**
 * @file
 * Quickstart: build a vectorized program with the Asm DSL, run it on
 * a big.VLITTLE system (one big core + a VLITTLE engine of four
 * reconfigured little cores), and inspect the results.
 *
 *   $ ./example_quickstart
 */

#include <cstdio>

#include "soc/soc.hh"

using namespace bvl;

int
main()
{
    // 1. A system: Design::d1b4VL is the paper's big.VLITTLE instance
    //    (512-bit hardware vector length from 4 lanes x 2 chimes x
    //    2 packed 32-bit elements).
    Soc soc(Design::d1b4VL);
    std::printf("system %s, VLEN = %u bits\n", designName(soc.design()),
                soc.vlenBits());

    // 2. Some data in the shared backing store.
    const unsigned n = 1024;
    const Addr src = 0x100000, dst = 0x200000;
    for (unsigned i = 0; i < n; ++i)
        soc.backing.writeT<std::int32_t>(src + 4 * i, i);

    // 3. A stripmined vector program: dst[i] = 3 * src[i]. The big
    //    core runs the scalar loop control; every v* instruction is
    //    dispatched to the VLITTLE engine.
    Asm a("triple");
    a.li(xreg(2), src)
     .li(xreg(3), dst)
     .li(xreg(5), 3)
     .label("loop")
     .vsetvli(xreg(4), xreg(10), 4)       // vl = min(n_left, VLMAX)
     .vle(vreg(1), xreg(2), 4)            // load a strip
     .vx(Op::vmul, vreg(2), vreg(1), xreg(5))
     .vse(vreg(2), xreg(3), 4)            // store it
     .slli(xreg(6), xreg(4), 2)
     .add(xreg(2), xreg(2), xreg(6))
     .add(xreg(3), xreg(3), xreg(6))
     .sub(xreg(10), xreg(10), xreg(4))
     .bne(xreg(10), xreg(0), "loop")
     .halt();
    auto prog = a.finish();
    prog->setTextBase(0x40000000);

    // 4. Run it: x10 carries n.
    bool done = false;
    soc.big->runProgram(prog, {{xreg(10), n}}, [&] { done = true; });
    soc.runUntil([&] { return done; });

    // 5. Check and report.
    bool ok = true;
    for (unsigned i = 0; i < n; ++i)
        ok &= soc.backing.readT<std::int32_t>(dst + 4 * i) ==
              static_cast<std::int32_t>(3 * i);
    std::printf("result %s, %.0f ns simulated\n", ok ? "OK" : "WRONG",
                soc.elapsedNs());
    std::printf("vector instructions dispatched: %llu\n",
                (unsigned long long)soc.stats.value("big.vecDispatched"));
    std::printf("engine mode switches: %llu (each costs 500 cycles)\n",
                (unsigned long long)
                    soc.stats.value("vlittle.modeSwitches"));
    return ok ? 0 : 1;
}
