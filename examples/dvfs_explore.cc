/**
 * @file
 * Section-VII style design-space exploration for one workload on
 * big.VLITTLE: sweep the big/little voltage-frequency levels of
 * Table VII, estimate power, and print the Pareto-optimal points.
 * Demonstrates the paper's conclusion — slow the big core, boost the
 * little cluster.
 *
 * The 16 V/f points are independent simulations, so they run through
 * the crash-safe sweep service (BVL_JOBS threads; journal/cache via
 * BVL_SWEEP_DIR / BVL_CACHE_DIR).
 *
 *   $ ./example_dvfs_explore [workload]
 */

#include <cstdio>
#include <cstdlib>
#include <future>

#include "power/power_model.hh"
#include "sweep/service/service.hh"

using namespace bvl;

int
main(int argc, char **argv)
{
    setVerbose(false);
    std::string name = argc > 1 ? argv[1] : "blackscholes";

    SweepServiceOptions sopts;
    const char *sweepDir = std::getenv("BVL_SWEEP_DIR");
    sopts.journalPath =
        std::string(sweepDir && *sweepDir ? sweepDir : ".bvl-sweep") +
        "/dvfs_explore.journal.jsonl";
    if (const char *c = std::getenv("BVL_CACHE_DIR"); c && *c)
        sopts.cacheDir = c;
    SweepService pool(sopts);
    SweepService::installSignalHandlers();
    std::vector<std::future<RunResult>> futures;
    for (unsigned bi = 0; bi < bigLevels.size(); ++bi) {
        for (unsigned li = 0; li < littleLevels.size(); ++li) {
            RunOptions opts;
            opts.bigGhz = bigLevels[bi].freqGhz;
            opts.littleGhz = littleLevels[li].freqGhz;
            futures.push_back(pool.submit(
                {Design::d1b4VL, name, Scale::tiny, opts}));
        }
    }

    std::vector<PerfPowerPoint> points;
    auto fut = futures.begin();
    try {
        for (unsigned bi = 0; bi < bigLevels.size(); ++bi) {
            for (unsigned li = 0; li < littleLevels.size(); ++li) {
                auto r = (fut++)->get();
                if (!r.finished)
                    continue;
                points.push_back({bi, li, r.ns,
                                  systemPowerW(Design::d1b4VL,
                                               bigLevels[bi],
                                               littleLevels[li])});
                std::printf(
                    "big=%s little=%s  time=%9.0f ns  power=%.3f W\n",
                    bigLevels[bi].name, littleLevels[li].name, r.ns,
                    points.back().watts);
            }
        }
    } catch (const SweepInterrupted &e) {
        // Completed V/f points are journaled; a rerun resumes.
        std::fprintf(stderr, "%s\n", e.what());
        return exitResumable;
    }

    std::printf("\nPareto-optimal points for %s on 1b-4VL:\n",
                name.c_str());
    for (const auto &f : paretoFrontier(points))
        std::printf("  big=%s little=%s  time=%9.0f ns  power=%.3f W\n",
                    bigLevels[f.bigLevel].name,
                    littleLevels[f.littleLevel].name, f.ns, f.watts);
    std::fprintf(stderr, "%s\n", pool.summaryLine().c_str());
    return 0;
}
