/**
 * @file
 * Fault-injection demo: sweep one workload across the seven designs
 * under a deterministic fault plan, with one configuration
 * deliberately deadlocked.
 *
 * Two plans are exercised:
 *  1. A transient plan (random response-latency stretches and dropped
 *     VMU responses with retries) that every design absorbs — the runs
 *     complete, only slower.
 *  2. A lethal plan for the VLITTLE design: a scripted VCU command-bus
 *     stall of two billion cycles with retries disabled. The watchdog
 *     detects the wedged engine, the run is reported as `deadlock`
 *     with a per-component diagnostic, and the sweep carries on with
 *     the remaining configurations.
 *
 *   $ ./example_fault_injection [workload]
 */

#include <cstdio>

#include "soc/run_driver.hh"

using namespace bvl;

namespace
{

void
row(const RunResult &r)
{
    if (r.ok())
        std::printf("%-10s %12.0f %14s\n", r.design.c_str(), r.ns,
                    runStatusName(r.status));
    else
        std::printf("%-10s %12s %14s\n", r.design.c_str(), "-",
                    runStatusName(r.status));
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    std::string name = argc > 1 ? argv[1] : "saxpy";

    const Design designs[] = {Design::d1L, Design::d1b, Design::d1bIV,
                              Design::d1b4L, Design::d1bIV4L,
                              Design::d1bDV, Design::d1b4VL};

    std::printf("[transient plan: stretched latencies + dropped VMU "
                "responses, retries on]\n");
    std::printf("%-10s %12s %14s\n", "design", "time(ns)", "status");
    for (Design d : designs) {
        RunOptions opts;
        opts.faults.enabled = true;
        opts.faults.seed = 42;
        opts.faults.memDelayProb = 0.05;
        opts.faults.cacheDelayProb = 0.02;
        opts.faults.vmuDropProb = 0.02;
        row(runWorkload(d, name, Scale::tiny, opts));
    }

    std::printf("\n[lethal plan on 1b-4VL: scripted VCU bus stall, "
                "retries disabled]\n");
    std::printf("%-10s %12s %14s\n", "design", "time(ns)", "status");
    std::string diagnostic;
    for (Design d : designs) {
        RunOptions opts;
        opts.watchdogIntervalNs = 2000.0;
        if (d == Design::d1b4VL) {
            opts.faults.enabled = true;
            opts.faults.vmuMaxRetries = 0;
            opts.faults.script.push_back(
                {0, FaultKind::vcuStall, Cycles(2'000'000'000)});
        }
        auto r = runWorkload(d, name, Scale::tiny, opts);
        row(r);
        if (r.status == RunStatus::deadlock)
            diagnostic = r.message;
    }

    if (!diagnostic.empty())
        std::printf("\ndeadlock diagnostic for the wedged run:\n%s",
                    diagnostic.c_str());
    return 0;
}
