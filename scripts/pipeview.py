#!/usr/bin/env python3
"""Pipeline viewer for bvl Perfetto traces, in the spirit of gem5's
O3PipeView: renders each traced instruction as one row on a shared
time axis, with a character marking each pipeline stage.

The input is a trace produced by an armed run (RunOptions::trace,
`example_run_workload --trace`, or BVL_TRACE_DIR=... on a bench).
Big-core rows use the retire-time async events, whose args carry the
fetch/issue/complete/retire ticks of the instruction; vector rows use
the VCU events' dispatch/complete ticks.

    f.....i====c--r   | 42 vle
    ^      ^    ^  ^
    fetch  issue|  retire
                complete

Usage:
    scripts/pipeview.py trace.json                 # big-core pipeline
    scripts/pipeview.py trace.json --track vcu     # vector instructions
    scripts/pipeview.py trace.json --start 100 --stop 400 --limit 50
"""

import argparse
import json
import sys

TICKS_PER_NS = 1000  # must match sim/types.hh


def load_events(path):
    with open(path) as f:
        doc = json.load(f)
    return doc["traceEvents"]


def track_names(events):
    """tid -> thread name from the metadata events."""
    names = {}
    for ev in events:
        if ev.get("ph") == "M" and ev.get("name") == "thread_name":
            names[ev["tid"]] = ev["args"]["name"]
    return names


def collect_big(events, names):
    """Big/little-core instruction records from retire async pairs."""
    rows = []
    for ev in events:
        if ev.get("ph") != "b":
            continue
        args = ev.get("args", {})
        if "fetch" not in args or "retire" not in args:
            continue
        rows.append({
            "seq": args.get("seq", 0),
            "op": ev.get("name", "?"),
            "track": names.get(ev.get("tid"), "?"),
            "stages": [("f", args["fetch"]), ("i", args["issue"]),
                       ("c", args["complete"]), ("r", args["retire"])],
        })
    rows.sort(key=lambda r: (r["stages"][0][1], r["seq"]))
    return rows


def collect_vcu(events, names):
    """Vector instruction records from the VCU dispatch/complete pairs."""
    rows = []
    for ev in events:
        if ev.get("ph") != "b" or ev.get("cat") != "vcu":
            continue
        args = ev.get("args", {})
        if "dispatch" not in args or "complete" not in args:
            continue
        rows.append({
            "seq": args.get("vseq", 0),
            "op": ev.get("name", "?"),
            "track": names.get(ev.get("tid"), "?"),
            "stages": [("d", args["dispatch"]),
                       ("c", args["complete"])],
        })
    rows.sort(key=lambda r: (r["stages"][0][1], r["seq"]))
    return rows


def render(rows, width, out):
    if not rows:
        out.write("no matching instructions in trace\n")
        return
    t0 = min(r["stages"][0][1] for r in rows)
    t1 = max(r["stages"][-1][1] for r in rows)
    span = max(t1 - t0, 1)
    scale = span / max(width - 1, 1)

    def col(t):
        return int((t - t0) / scale)

    out.write("# %d instructions, %.1f ns span, %.3f ns/char\n"
              % (len(rows), span / TICKS_PER_NS,
                 scale / TICKS_PER_NS))
    for r in rows:
        line = [" "] * width
        stages = r["stages"]
        # Fill phases: '.' fetch->issue (in flight, not yet issued),
        # '=' issue->complete (executing), '-' complete->retire
        # (done, waiting at the ROB head).
        fills = {0: ".", 1: "=", 2: "-"}
        for i in range(len(stages) - 1):
            a, b = col(stages[i][1]), col(stages[i + 1][1])
            for c in range(a, min(b, width)):
                line[c] = fills.get(i, "=")
        for mark, t in stages:
            c = col(t)
            if 0 <= c < width:
                line[c] = mark
        out.write("%s | %6d %-10s %s\n"
                  % ("".join(line), r["seq"], r["op"], r["track"]))


def main():
    ap = argparse.ArgumentParser(
        description="O3PipeView-style renderer for bvl traces")
    ap.add_argument("trace", help="Perfetto JSON trace file")
    ap.add_argument("--track", choices=["big", "vcu"], default="big",
                    help="big: scalar-core pipeline (default); "
                         "vcu: vector instructions")
    ap.add_argument("--start", type=float, default=None,
                    help="only instructions fetched at/after this ns")
    ap.add_argument("--stop", type=float, default=None,
                    help="only instructions fetched at/before this ns")
    ap.add_argument("--limit", type=int, default=200,
                    help="max rows (default 200, 0 = all)")
    ap.add_argument("--width", type=int, default=100,
                    help="timeline width in characters")
    args = ap.parse_args()

    events = load_events(args.trace)
    names = track_names(events)
    rows = (collect_big if args.track == "big" else collect_vcu)(
        events, names)

    if args.start is not None:
        lo = args.start * TICKS_PER_NS
        rows = [r for r in rows if r["stages"][0][1] >= lo]
    if args.stop is not None:
        hi = args.stop * TICKS_PER_NS
        rows = [r for r in rows if r["stages"][0][1] <= hi]
    dropped = 0
    if args.limit and len(rows) > args.limit:
        dropped = len(rows) - args.limit
        rows = rows[:args.limit]

    render(rows, args.width, sys.stdout)
    if dropped:
        sys.stdout.write("# %d more rows suppressed (--limit)\n"
                         % dropped)
    return 0


if __name__ == "__main__":
    sys.exit(main())
