#!/usr/bin/env bash
# Tier-1 verification: build and run the full test suite normally and
# under AddressSanitizer + UBSan, then run the concurrency/determinism
# tests under ThreadSanitizer to check the parallel sweep runner and
# the library's re-entrancy guarantees.
set -euo pipefail

cd "$(dirname "$0")/.."
jobs=$(nproc)

echo "=== normal build ==="
cmake -B build -S . >/dev/null
cmake --build build -j "$jobs"
ctest --test-dir build --output-on-failure -j "$jobs"

echo "=== parallel sweep determinism (BVL_JOBS=1 vs 4) ==="
BVL_SCALE=tiny BVL_JOBS=1 ./build/bench/fig04_speedup > build/fig04.j1
BVL_SCALE=tiny BVL_JOBS=4 ./build/bench/fig04_speedup > build/fig04.j4
cmp build/fig04.j1 build/fig04.j4
echo "fig04_speedup output is byte-identical across thread counts"

echo "=== kernel microbenchmark smoke (Release, short min_time) ==="
# Not a performance gate — just proves the benchmarks still build and
# run. scripts/bench.sh produces the real numbers (BENCH_kernel.json).
cmake -B build-bench -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build-bench -j "$jobs" --target microbench_sim >/dev/null
./build-bench/bench/microbench_sim \
    --benchmark_filter='BM_EventQueue|BM_TickChurn|BM_Stat' \
    --benchmark_min_time=0.01

echo "=== sanitized build (ASan + UBSan) ==="
cmake -B build-asan -S . -DBVL_SANITIZE=address >/dev/null
cmake --build build-asan -j "$jobs"
ctest --test-dir build-asan --output-on-failure -j "$jobs"

echo "=== thread-sanitized build (TSan, concurrency tests) ==="
cmake -B build-tsan -S . -DBVL_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$jobs"
ctest --test-dir build-tsan --output-on-failure -j "$jobs" \
      -R 'Determinism|SweepRunner|Concurrency|LogCapture'

echo "=== ci.sh: all checks passed ==="
