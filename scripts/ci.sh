#!/usr/bin/env bash
# Tier-1 verification: build and run the full test suite twice,
# once normally and once under AddressSanitizer + UBSan.
set -euo pipefail

cd "$(dirname "$0")/.."
jobs=$(nproc)

echo "=== normal build ==="
cmake -B build -S . >/dev/null
cmake --build build -j "$jobs"
ctest --test-dir build --output-on-failure -j "$jobs"

echo "=== sanitized build (ASan + UBSan) ==="
cmake -B build-asan -S . -DBVL_SANITIZE=ON >/dev/null
cmake --build build-asan -j "$jobs"
ctest --test-dir build-asan --output-on-failure -j "$jobs"

echo "=== ci.sh: all checks passed ==="
