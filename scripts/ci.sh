#!/usr/bin/env bash
# Tier-1 verification: build and run the full test suite normally and
# under AddressSanitizer + UBSan, run the checker-enabled suite under
# plain UBSan, run the concurrency/determinism tests under
# ThreadSanitizer to check the parallel sweep runner and the library's
# re-entrancy guarantees, smoke the failure-forensics pipeline
# (deliberately fatal fault plan -> JSON report -> plan minimizer),
# smoke the sweep service's crash safety (kill -9/resume, cache
# poisoning, isolation, SIGINT; scripts/sweep_smoke.sh), smoke
# checkpoint save/restore determinism, corrupt-checkpoint quarantine,
# sampled-run determinism and the checkpoint-prefix farm (cold
# populate, warm zero-fast-forward rerun, corrupt-entry re-production,
# isolate-mode flock race; scripts/checkpoint_smoke.sh), smoke I/O
# fault injection across the persistence stack (per-site faults,
# mid-operation crashes and a seeded probabilistic soak must never
# move sweep stdout or leave temp litter; scripts/chaos_smoke.sh),
# gate the sweep journal a live sweep just wrote (scripts/check_bench.py
# --journal), smoke the mobile kernel tier (fig_mobile BVL_JOBS=1 vs 4
# byte-identical, its journal gated, and its simulated-time /
# access-pattern table gated against the pinned BENCH_mobile.json via
# scripts/check_bench.py --mobile), gate the sampled-simulation
# cycle-error bound against full detail (fig04_sampled +
# scripts/check_bench.py --sampled), and gate the kernel
# microbenchmarks against the pinned baseline (scripts/check_bench.py).
#
# Suites are selected with ctest labels (see tests/CMakeLists.txt):
# unit, checker, concurrency, trace, workloads.
#
# Parallelism: --jobs N or BVL_CI_JOBS=N (default: nproc). CI runners
# often have fewer cores than nproc reports usable; both knobs
# propagate to cmake --build and ctest.
#
# Usage: scripts/ci.sh [--jobs N]
set -euo pipefail

cd "$(dirname "$0")/.."

jobs="${BVL_CI_JOBS:-$(nproc)}"
while [ $# -gt 0 ]; do
    case "$1" in
      --jobs)
        [ $# -ge 2 ] || { echo "--jobs needs a value" >&2; exit 2; }
        jobs="$2"; shift 2 ;;
      --jobs=*)
        jobs="${1#--jobs=}"; shift ;;
      *)
        echo "unknown option: $1 (usage: scripts/ci.sh [--jobs N])" >&2
        exit 2 ;;
    esac
done
case "$jobs" in
  ''|*[!0-9]*) echo "--jobs/BVL_CI_JOBS must be a number" >&2; exit 2 ;;
esac

echo "=== normal build (jobs=$jobs) ==="
cmake -B build -S . >/dev/null
cmake --build build -j "$jobs"
ctest --test-dir build --output-on-failure -j "$jobs"

echo "=== parallel sweep determinism (BVL_JOBS=1 vs 4) ==="
# Separate BVL_SWEEP_DIR per run: the point is comparing two *live*
# sweeps, not a sweep against its own journal replay.
rm -rf build/sweep.j1 build/sweep.j4
BVL_SCALE=tiny BVL_JOBS=1 BVL_SWEEP_DIR=build/sweep.j1 \
    ./build/bench/fig04_speedup > build/fig04.j1
BVL_SCALE=tiny BVL_JOBS=4 BVL_SWEEP_DIR=build/sweep.j4 \
    ./build/bench/fig04_speedup > build/fig04.j4
cmp build/fig04.j1 build/fig04.j4
echo "fig04_speedup output is byte-identical across thread counts"

echo "=== journal gate (every journaled sweep cell finished ok) ==="
python3 scripts/check_bench.py \
    --journal build/sweep.j1/fig04_speedup.journal.jsonl

echo "=== mobile tier smoke (fig_mobile, BVL_JOBS=1 vs 4 + gates) ==="
rm -rf build/mobile.j1 build/mobile.j4
BVL_SCALE=tiny BVL_JOBS=1 BVL_SWEEP_DIR=build/mobile.j1 \
    BVL_MOBILE_OUT=build/mobile.json \
    ./build/bench/fig_mobile > build/fig_mobile.j1
BVL_SCALE=tiny BVL_JOBS=4 BVL_SWEEP_DIR=build/mobile.j4 \
    ./build/bench/fig_mobile > build/fig_mobile.j4
cmp build/fig_mobile.j1 build/fig_mobile.j4
echo "fig_mobile output is byte-identical across thread counts"
python3 scripts/check_bench.py \
    --journal build/mobile.j1/fig_mobile.journal.jsonl
# Simulated time and VMU access-pattern counts are machine-independent,
# so the default tight tolerance applies even on CI.
python3 scripts/check_bench.py --mobile build/mobile.json

echo "=== armed-trace determinism (BVL_TRACE_DIR, BVL_JOBS=1 vs 4) ==="
rm -rf build/traces.j1 build/traces.j4 build/sweep.tj1 build/sweep.tj4
mkdir -p build/traces.j1 build/traces.j4
BVL_SCALE=tiny BVL_JOBS=1 BVL_TRACE_DIR=build/traces.j1 \
    BVL_SWEEP_DIR=build/sweep.tj1 \
    ./build/bench/fig04_speedup > build/fig04.traced.j1
BVL_SCALE=tiny BVL_JOBS=4 BVL_TRACE_DIR=build/traces.j4 \
    BVL_SWEEP_DIR=build/sweep.tj4 \
    ./build/bench/fig04_speedup > build/fig04.traced.j4
cmp build/fig04.j1 build/fig04.traced.j1   # tracing never perturbs
diff <(cd build/traces.j1 && md5sum *.json) \
     <(cd build/traces.j4 && md5sum *.json)
python3 scripts/pipeview.py \
    "$(ls build/traces.j1/*_1b-4VL_saxpy.json | head -1)" \
    --track vcu --limit 5 >/dev/null
echo "traces are byte-identical across thread counts"

echo "=== sweep-service crash safety (kill/resume, cache poisoning) ==="
scripts/sweep_smoke.sh build build/sweep-smoke

echo "=== checkpoint save/restore + sampled determinism smoke ==="
scripts/checkpoint_smoke.sh build build/ckpt-smoke

echo "=== I/O chaos smoke (fault injection across the persistence stack) ==="
scripts/chaos_smoke.sh build build/chaos-smoke

echo "=== sampled-accuracy gate (fig04 sampled vs full detail) ==="
# Cycle error is machine-independent, so the 3% bound holds on any
# host; wall-clock speedup is reported but never gated.
BVL_SCALE=medium BVL_SAMPLED_OUT=build/sampled.json \
    ./build/bench/fig04_sampled | tee build/fig04_sampled.out
python3 scripts/check_bench.py --sampled build/sampled.json

echo "=== kernel microbenchmark gate (Release) ==="
cmake -B build-bench -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build-bench -j "$jobs" --target microbench_sim >/dev/null
python3 scripts/check_bench.py --self-test
./build-bench/bench/microbench_sim \
    --benchmark_filter='BM_EventQueue|BM_TickChurn|BM_Stat|BM_CacheHitPath|BM_FastForwardStep' \
    --benchmark_min_time=0.1 \
    --benchmark_out=build-bench/microbench_ci.json \
    --benchmark_out_format=json
python3 scripts/check_bench.py \
    --results build-bench/microbench_ci.json

echo "=== forensics smoke (fatal plan -> report -> minimizer) ==="
report=build/forensics_smoke.json
rm -f "$report"
./build/examples/example_minimize_fault_plan "$report" \
    | tee build/forensics_smoke.log
test -s "$report" || { echo "FAIL: no failure report at $report"; exit 1; }
minimal=$(sed -n 's/^minimal injections: //p' build/forensics_smoke.log)
if [ -z "$minimal" ] || [ "$minimal" -gt 2 ]; then
    echo "FAIL: minimizer did not converge (minimal='$minimal')"
    exit 1
fi
grep -q '^one-minimal: yes' build/forensics_smoke.log \
    || { echo "FAIL: minimized plan is not 1-minimal"; exit 1; }
echo "forensics report written and plan minimized to $minimal injection(s)"

echo "=== sanitized build (ASan + UBSan) ==="
cmake -B build-asan -S . -DBVL_SANITIZE=address >/dev/null
cmake --build build-asan -j "$jobs"
ctest --test-dir build-asan --output-on-failure -j "$jobs"

echo "=== undefined-behavior build (UBSan, checker + trace + workloads) ==="
# The workloads label rides along here: the mobile tier's int8/int16
# fixed-point arithmetic is exactly where signed-overflow or shift UB
# would hide.
cmake -B build-ubsan -S . -DBVL_SANITIZE=undefined >/dev/null
cmake --build build-ubsan -j "$jobs"
ctest --test-dir build-ubsan --output-on-failure -j "$jobs" \
      -L 'checker|trace|workloads'

echo "=== thread-sanitized build (TSan, concurrency tests) ==="
cmake -B build-tsan -S . -DBVL_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$jobs"
ctest --test-dir build-tsan --output-on-failure -j "$jobs" \
      -L concurrency

echo "=== ci.sh: all checks passed ==="
