#!/usr/bin/env bash
# Tier-1 verification: build and run the full test suite normally and
# under AddressSanitizer + UBSan, run the checker-enabled suite under
# plain UBSan, run the concurrency/determinism tests under
# ThreadSanitizer to check the parallel sweep runner and the library's
# re-entrancy guarantees, and smoke the failure-forensics pipeline
# (deliberately fatal fault plan -> JSON report -> plan minimizer).
set -euo pipefail

cd "$(dirname "$0")/.."
jobs=$(nproc)

echo "=== normal build ==="
cmake -B build -S . >/dev/null
cmake --build build -j "$jobs"
ctest --test-dir build --output-on-failure -j "$jobs"

echo "=== parallel sweep determinism (BVL_JOBS=1 vs 4) ==="
BVL_SCALE=tiny BVL_JOBS=1 ./build/bench/fig04_speedup > build/fig04.j1
BVL_SCALE=tiny BVL_JOBS=4 ./build/bench/fig04_speedup > build/fig04.j4
cmp build/fig04.j1 build/fig04.j4
echo "fig04_speedup output is byte-identical across thread counts"

echo "=== kernel microbenchmark smoke (Release, short min_time) ==="
# Not a performance gate — just proves the benchmarks still build and
# run. scripts/bench.sh produces the real numbers (BENCH_kernel.json).
cmake -B build-bench -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build-bench -j "$jobs" --target microbench_sim >/dev/null
./build-bench/bench/microbench_sim \
    --benchmark_filter='BM_EventQueue|BM_TickChurn|BM_Stat|BM_CacheHitPath' \
    --benchmark_min_time=0.01

echo "=== forensics smoke (fatal plan -> report -> minimizer) ==="
report=build/forensics_smoke.json
rm -f "$report"
./build/examples/example_minimize_fault_plan "$report" \
    | tee build/forensics_smoke.log
test -s "$report" || { echo "FAIL: no failure report at $report"; exit 1; }
minimal=$(sed -n 's/^minimal injections: //p' build/forensics_smoke.log)
if [ -z "$minimal" ] || [ "$minimal" -gt 2 ]; then
    echo "FAIL: minimizer did not converge (minimal='$minimal')"
    exit 1
fi
grep -q '^one-minimal: yes' build/forensics_smoke.log \
    || { echo "FAIL: minimized plan is not 1-minimal"; exit 1; }
echo "forensics report written and plan minimized to $minimal injection(s)"

echo "=== sanitized build (ASan + UBSan) ==="
cmake -B build-asan -S . -DBVL_SANITIZE=address >/dev/null
cmake --build build-asan -j "$jobs"
ctest --test-dir build-asan --output-on-failure -j "$jobs"

echo "=== undefined-behavior build (UBSan, checker-enabled suite) ==="
cmake -B build-ubsan -S . -DBVL_SANITIZE=undefined >/dev/null
cmake --build build-ubsan -j "$jobs"
ctest --test-dir build-ubsan --output-on-failure -j "$jobs" \
      -R 'Lockstep|Forensics|Minimize|Invariant|Json|FaultedCosim|Cosim'

echo "=== thread-sanitized build (TSan, concurrency tests) ==="
cmake -B build-tsan -S . -DBVL_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$jobs"
ctest --test-dir build-tsan --output-on-failure -j "$jobs" \
      -R 'Determinism|SweepRunner|Concurrency|LogCapture'

echo "=== ci.sh: all checks passed ==="
