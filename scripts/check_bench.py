#!/usr/bin/env python3
"""Bench-regression gate: compare a fresh google-benchmark JSON run
against the pinned baseline (BENCH_kernel.json at the repo root) and
fail when a gated kernel microbenchmark regressed beyond tolerance.

The gated benches are the allocation-free hot paths the simulator's
throughput rests on; anything touching the event queue, stat counters
or the cache hit path shows up here long before it shows up in a
figure sweep.

Absolute nanoseconds are machine-dependent, so the tolerance is
deliberately loose (default 25%) and can be widened for noisy CI
runners via --tolerance or BVL_BENCH_TOLERANCE. The gate catches
order-of-magnitude mistakes (an accidental allocation or lock on the
hot path), not single-digit-percent drift; scripts/bench.sh --update
refreshes the baseline after intentional changes.

Usage:
    scripts/check_bench.py --results build-bench/microbench.json
    scripts/check_bench.py --results r.json --tolerance 0.5
    scripts/check_bench.py --self-test
"""

import argparse
import json
import os
import sys

GATED = ["BM_CacheHitPath", "BM_TickChurn", "BM_StatIncrement"]


class GateInputError(Exception):
    """A baseline/results file is unusable; message says how and what
    to do about it."""


def load_json_doc(path, role, hint):
    """Parse @path as a JSON object, or raise one actionable error.

    A missing, truncated, or non-JSON file (a killed benchmark run, a
    bad --results path, an unpulled baseline) must produce a one-line
    diagnosis and a nonzero exit, not a traceback.
    """
    try:
        with open(path) as f:
            doc = json.load(f)
    except FileNotFoundError:
        raise GateInputError("%s file %s does not exist; %s"
                             % (role, path, hint))
    except json.JSONDecodeError as e:
        raise GateInputError("%s file %s is not valid JSON (%s) — "
                             "truncated or corrupt? %s"
                             % (role, path, e, hint))
    except OSError as e:
        raise GateInputError("%s file %s is unreadable (%s); %s"
                             % (role, path, e.strerror, hint))
    if not isinstance(doc, dict):
        raise GateInputError("%s file %s is JSON but not an object "
                             "(got %s); %s"
                             % (role, path, type(doc).__name__, hint))
    return doc


def load_baseline(path):
    """name -> cpu_ns from a BENCH_kernel.json document."""
    doc = load_json_doc(path, "baseline",
                        "regenerate with scripts/bench.sh --update")
    micro = doc.get("microbenchmarks")
    if not isinstance(micro, dict) or not micro:
        raise GateInputError("baseline file %s has no 'microbenchmarks' "
                             "object; regenerate with scripts/bench.sh "
                             "--update" % path)
    try:
        return {name: entry["cpu_ns"] for name, entry in micro.items()}
    except (TypeError, KeyError):
        raise GateInputError("baseline file %s: entries lack 'cpu_ns'; "
                             "regenerate with scripts/bench.sh --update"
                             % path)


def load_results(path):
    """name -> cpu_ns from google-benchmark --benchmark_out JSON."""
    doc = load_json_doc(path, "results",
                        "rerun the microbenchmark with "
                        "--benchmark_out=<path>")
    out = {}
    for b in doc.get("benchmarks", []):
        if not isinstance(b, dict):
            continue
        if b.get("run_type", "iteration") != "iteration":
            continue
        try:
            out[b["name"]] = b["cpu_time"]
        except KeyError:
            raise GateInputError("results file %s: benchmark entry "
                                 "lacks name/cpu_time; rerun the "
                                 "microbenchmark with "
                                 "--benchmark_out=<path>" % path)
    if not out:
        raise GateInputError("results file %s contains no iteration "
                             "benchmarks — interrupted run? rerun the "
                             "microbenchmark with "
                             "--benchmark_out=<path>" % path)
    return out


def compare(baseline, results, tolerance, benches):
    """Return (failures, report_lines); failures is a list of names."""
    failures = []
    lines = []
    for name in benches:
        if name not in baseline:
            failures.append(name)
            lines.append("%-20s MISSING from baseline" % name)
            continue
        if name not in results:
            failures.append(name)
            lines.append("%-20s MISSING from results" % name)
            continue
        base, new = baseline[name], results[name]
        ratio = new / base if base > 0 else float("inf")
        verdict = "ok"
        if ratio > 1.0 + tolerance:
            verdict = "REGRESSED"
            failures.append(name)
        elif ratio < 1.0 / (1.0 + tolerance):
            verdict = "improved"
        lines.append("%-20s %12.3f ns -> %12.3f ns  (%+6.1f%%)  %s"
                     % (name, base, new, (ratio - 1.0) * 100.0, verdict))
    return failures, lines


def self_test():
    """Machine-independent check that the gate actually gates."""
    baseline = {"BM_CacheHitPath": 25.0, "BM_TickChurn": 17000.0,
                "BM_StatIncrement": 0.4}

    ok = dict(baseline)
    failures, _ = compare(baseline, ok, 0.25, GATED)
    assert not failures, "identical results must pass: %s" % failures

    noisy = {k: v * 1.2 for k, v in baseline.items()}
    failures, _ = compare(baseline, noisy, 0.25, GATED)
    assert not failures, "20%% drift within 25%% tolerance: %s" % failures

    slow = dict(baseline)
    slow["BM_CacheHitPath"] *= 2.0  # injected slowdown
    failures, lines = compare(baseline, slow, 0.25, GATED)
    assert failures == ["BM_CacheHitPath"], \
        "2x slowdown must fail exactly one bench: %s" % failures
    assert any("REGRESSED" in l for l in lines)

    missing = dict(baseline)
    del missing["BM_TickChurn"]
    failures, _ = compare(baseline, missing, 0.25, GATED)
    assert failures == ["BM_TickChurn"], \
        "a dropped bench must fail: %s" % failures

    fast = {k: v * 0.5 for k, v in baseline.items()}
    failures, lines = compare(baseline, fast, 0.25, GATED)
    assert not failures
    assert all("improved" in l for l in lines)

    # Broken input files: one actionable error each, never a traceback.
    import tempfile
    with tempfile.TemporaryDirectory() as tmp:
        cases = [
            (os.path.join(tmp, "absent.json"), None, "does not exist"),
            (os.path.join(tmp, "torn.json"), '{"benchmarks": [{"na',
             "not valid JSON"),
            (os.path.join(tmp, "scalar.json"), "42", "not an object"),
            (os.path.join(tmp, "empty.json"), '{"benchmarks": []}',
             "no iteration benchmarks"),
        ]
        for path, content, expect in cases:
            if content is not None:
                with open(path, "w") as f:
                    f.write(content)
            try:
                load_results(path)
            except GateInputError as e:
                assert expect in str(e), \
                    "wrong diagnosis for %s: %s" % (path, e)
            else:
                assert False, "%s must be rejected" % path
        bad_base = os.path.join(tmp, "base.json")
        with open(bad_base, "w") as f:
            f.write('{"something_else": {}}')
        try:
            load_baseline(bad_base)
        except GateInputError as e:
            assert "microbenchmarks" in str(e)
        else:
            assert False, "baseline without microbenchmarks must fail"

    print("check_bench.py self-test: all cases behaved")
    return 0


def main():
    ap = argparse.ArgumentParser(
        description="compare kernel microbenches against the pinned "
                    "baseline")
    ap.add_argument("--baseline", default="BENCH_kernel.json",
                    help="pinned baseline (default: BENCH_kernel.json)")
    ap.add_argument("--results",
                    help="google-benchmark --benchmark_out JSON to check")
    ap.add_argument("--tolerance", type=float,
                    default=float(os.environ.get("BVL_BENCH_TOLERANCE",
                                                 "0.25")),
                    help="allowed slowdown fraction (default 0.25, env "
                         "BVL_BENCH_TOLERANCE)")
    ap.add_argument("--benches", default=",".join(GATED),
                    help="comma-separated gated bench names")
    ap.add_argument("--self-test", action="store_true",
                    help="verify the comparator catches an injected "
                         "slowdown, then exit")
    args = ap.parse_args()

    if args.self_test:
        return self_test()
    if not args.results:
        ap.error("--results is required (or use --self-test)")

    benches = [b for b in args.benches.split(",") if b]
    try:
        baseline = load_baseline(args.baseline)
        results = load_results(args.results)
    except GateInputError as e:
        print("bench gate: ERROR: %s" % e, file=sys.stderr)
        return 1
    failures, lines = compare(baseline, results, args.tolerance, benches)

    print("bench gate: tolerance %.0f%%, baseline %s"
          % (args.tolerance * 100.0, args.baseline))
    for line in lines:
        print("  " + line)
    if failures:
        print("FAIL: regressed/missing: %s" % ", ".join(failures))
        print("(intentional change? refresh with scripts/bench.sh "
              "--update)")
        return 1
    print("bench gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
