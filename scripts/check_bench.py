#!/usr/bin/env python3
"""Bench-regression gate: compare a fresh google-benchmark JSON run
against the pinned baseline (BENCH_kernel.json at the repo root) and
fail when a gated kernel microbenchmark regressed beyond tolerance.

The gated benches are the allocation-free hot paths the simulator's
throughput rests on; anything touching the event queue, stat counters
or the cache hit path shows up here long before it shows up in a
figure sweep.

Absolute nanoseconds are machine-dependent, so the tolerance is
deliberately loose (default 25%) and can be widened for noisy CI
runners via --tolerance or BVL_BENCH_TOLERANCE. The gate catches
order-of-magnitude mistakes (an accidental allocation or lock on the
hot path), not single-digit-percent drift; scripts/bench.sh --update
refreshes the baseline after intentional changes.

A second gate covers sampled (fast-forward) simulation accuracy:
--sampled checks a bvl-sampled-validation-v1 document (written by
`BVL_SAMPLED_OUT=<file> build/bench/fig04_sampled`) against the mean
cycle-error bound the sampling feature promises (3%, DESIGN.md §15).
Unlike nanoseconds, cycle error is machine-independent, so the bound
is tight and not widened on CI. Wall-clock speedup is reported but
never gated — it depends on the host.

A third gate covers the mobile kernel tier: --mobile checks a
bvl-mobile-tier-v1 document (written by `BVL_MOBILE_OUT=<file>
build/bench/fig_mobile`) against the pinned BENCH_mobile.json
baseline. Simulated nanoseconds and VMU access-pattern line counts
are machine-independent, so this gate is about the *timing model*,
not the host: it fails when a kernel's simulated time regressed
beyond tolerance, when a run stopped verifying, or when a kernel
lost an access-pattern path it used to exercise (e.g. an indexed
gather silently turned into unit-stride loads).

A fourth gate reads a sweep-service write-ahead journal (the
bvl-sweep-journal-v1 JSONL every figure bench appends to, DESIGN.md
§14) as its results store: --journal fails if any journaled run ended
in a non-ok status, and reports the row count, the designs covered and
the total simulation wall-clock the journal recorded. CI points it at
the journal a bench sweep just wrote, so "the sweep printed numbers"
and "every cell actually finished ok" stop being the same check.

Usage:
    scripts/check_bench.py --results build-bench/microbench.json
    scripts/check_bench.py --results r.json --tolerance 0.5
    scripts/check_bench.py --sampled build/sampled.json
    scripts/check_bench.py --mobile build/mobile.json
    scripts/check_bench.py --journal build/.bvl-sweep/fig04.journal.jsonl
    scripts/check_bench.py --self-test
"""

import argparse
import json
import os
import sys

GATED = ["BM_CacheHitPath", "BM_TickChurn", "BM_StatIncrement",
         "BM_FastForwardStep"]


class GateInputError(Exception):
    """A baseline/results file is unusable; message says how and what
    to do about it."""


def load_json_doc(path, role, hint):
    """Parse @path as a JSON object, or raise one actionable error.

    A missing, truncated, or non-JSON file (a killed benchmark run, a
    bad --results path, an unpulled baseline) must produce a one-line
    diagnosis and a nonzero exit, not a traceback.
    """
    try:
        with open(path) as f:
            doc = json.load(f)
    except FileNotFoundError:
        raise GateInputError("%s file %s does not exist; %s"
                             % (role, path, hint))
    except json.JSONDecodeError as e:
        raise GateInputError("%s file %s is not valid JSON (%s) — "
                             "truncated or corrupt? %s"
                             % (role, path, e, hint))
    except OSError as e:
        raise GateInputError("%s file %s is unreadable (%s); %s"
                             % (role, path, e.strerror, hint))
    if not isinstance(doc, dict):
        raise GateInputError("%s file %s is JSON but not an object "
                             "(got %s); %s"
                             % (role, path, type(doc).__name__, hint))
    return doc


def load_baseline(path):
    """name -> cpu_ns from a BENCH_kernel.json document."""
    doc = load_json_doc(path, "baseline",
                        "regenerate with scripts/bench.sh --update")
    micro = doc.get("microbenchmarks")
    if not isinstance(micro, dict) or not micro:
        raise GateInputError("baseline file %s has no 'microbenchmarks' "
                             "object; regenerate with scripts/bench.sh "
                             "--update" % path)
    try:
        return {name: entry["cpu_ns"] for name, entry in micro.items()}
    except (TypeError, KeyError):
        raise GateInputError("baseline file %s: entries lack 'cpu_ns'; "
                             "regenerate with scripts/bench.sh --update"
                             % path)


def load_results(path):
    """name -> cpu_ns from google-benchmark --benchmark_out JSON."""
    doc = load_json_doc(path, "results",
                        "rerun the microbenchmark with "
                        "--benchmark_out=<path>")
    out = {}
    for b in doc.get("benchmarks", []):
        if not isinstance(b, dict):
            continue
        if b.get("run_type", "iteration") != "iteration":
            continue
        try:
            out[b["name"]] = b["cpu_time"]
        except KeyError:
            raise GateInputError("results file %s: benchmark entry "
                                 "lacks name/cpu_time; rerun the "
                                 "microbenchmark with "
                                 "--benchmark_out=<path>" % path)
    if not out:
        raise GateInputError("results file %s contains no iteration "
                             "benchmarks — interrupted run? rerun the "
                             "microbenchmark with "
                             "--benchmark_out=<path>" % path)
    return out


SAMPLED_SCHEMA = "bvl-sampled-validation-v1"


def load_sampled(path):
    """Validated bvl-sampled-validation-v1 document from fig04_sampled."""
    hint = ("regenerate with BVL_SAMPLED_OUT=%s "
            "build/bench/fig04_sampled" % path)
    doc = load_json_doc(path, "sampled-validation", hint)
    if doc.get("schema") != SAMPLED_SCHEMA:
        raise GateInputError("sampled-validation file %s has schema %r, "
                             "expected %r; %s"
                             % (path, doc.get("schema"), SAMPLED_SCHEMA,
                                hint))
    rows = doc.get("rows")
    if not isinstance(rows, list) or not rows:
        raise GateInputError("sampled-validation file %s has no rows — "
                             "did every workload fail? %s" % (path, hint))
    if not isinstance(doc.get("meanAbsError"), (int, float)):
        raise GateInputError("sampled-validation file %s lacks a numeric "
                             "'meanAbsError'; %s" % (path, hint))
    return doc


def check_sampled(doc, max_mean_error):
    """Return (failures, report_lines) for a sampled-validation doc.

    Gates the suite-mean absolute cycle error; per-workload errors are
    reported for diagnosis but individually only fail at 2x the mean
    bound (one phase-y workload may sit above the mean bound without
    the sampling methodology being broken).
    """
    failures = []
    lines = []
    per_row_bound = 2.0 * max_mean_error
    for row in doc["rows"]:
        name = row.get("workload", "?")
        err = row.get("error")
        if not isinstance(err, (int, float)):
            failures.append(name)
            lines.append("%-16s no error value (failed run?)" % name)
            continue
        verdict = "ok"
        if abs(err) > per_row_bound:
            verdict = "EXCEEDS %.0f%%" % (per_row_bound * 100.0)
            failures.append(name)
        lines.append("%-16s %+7.2f%%  %6.1fx  %s"
                     % (name, err * 100.0,
                        row.get("speedup", 0.0), verdict))
    mean = doc["meanAbsError"]
    verdict = "ok"
    if mean > max_mean_error:
        verdict = "EXCEEDS %.0f%% BOUND" % (max_mean_error * 100.0)
        failures.append("mean")
    lines.append("%-16s %+7.2f%%  %6.1fx  %s"
                 % ("mean|err|", mean * 100.0,
                    doc.get("aggregateSpeedup", 0.0), verdict))
    return failures, lines


MOBILE_SCHEMA = "bvl-mobile-tier-v1"
MOBILE_PATTERNS = ("unitLines", "stridedLines", "indexedLines")


def load_mobile(path, role, hint):
    """Validated bvl-mobile-tier-v1 document from fig_mobile."""
    doc = load_json_doc(path, role, hint)
    if doc.get("schema") != MOBILE_SCHEMA:
        raise GateInputError("%s file %s has schema %r, expected %r; %s"
                             % (role, path, doc.get("schema"),
                                MOBILE_SCHEMA, hint))
    rows = doc.get("rows")
    if not isinstance(rows, list) or not rows:
        raise GateInputError("%s file %s has no rows — did every run "
                             "fail? %s" % (role, path, hint))
    for row in rows:
        if (not isinstance(row, dict) or "workload" not in row
                or "design" not in row
                or not isinstance(row.get("ns"), (int, float))):
            raise GateInputError("%s file %s: row lacks workload/"
                                 "design/ns; %s" % (role, path, hint))
    return doc


def check_mobile(baseline, results, tolerance):
    """Return (failures, report_lines) for two mobile-tier documents.

    Each baseline cell (workload x design) must still exist, verify,
    keep its simulated time within tolerance, and keep every VMU
    access-pattern class it used to exercise nonzero — a kernel whose
    indexed gather silently degrades to something else should fail
    loudly, not just shift a number.
    """
    if baseline.get("scale") != results.get("scale"):
        raise GateInputError("mobile baseline is at scale %r but the "
                             "results are at %r; rerun fig_mobile with "
                             "BVL_SCALE=%s"
                             % (baseline.get("scale"),
                                results.get("scale"),
                                baseline.get("scale")))
    key = lambda r: (r["workload"], r["design"])
    new = {key(r): r for r in results["rows"]}
    failures = []
    lines = []
    for b in baseline["rows"]:
        name = "%s/%s" % (b["workload"], b["design"])
        r = new.get(key(b))
        if r is None:
            failures.append(name)
            lines.append("%-18s MISSING from results" % name)
            continue
        problems = []
        if not r.get("verified", False):
            problems.append("NOT VERIFIED")
        ratio = r["ns"] / b["ns"] if b["ns"] > 0 else float("inf")
        verdict = "ok"
        if ratio > 1.0 + tolerance:
            verdict = "REGRESSED"
            problems.append(verdict)
        elif ratio < 1.0 / (1.0 + tolerance):
            verdict = "improved"
        for pat in MOBILE_PATTERNS:
            if b.get(pat, 0) > 0 and r.get(pat, 0) == 0:
                problems.append("LOST %s" % pat)
        if problems:
            failures.append(name)
        lines.append("%-18s %12.0f ns -> %12.0f ns  (%+6.1f%%)  %s"
                     % (name, b["ns"], r["ns"], (ratio - 1.0) * 100.0,
                        " ".join(problems) if problems else verdict))
    return failures, lines


JOURNAL_SCHEMA = "bvl-sweep-journal-v1"


def load_journal(path):
    """Valid bvl-sweep-journal-v1 rows from a sweep journal.

    A line is the journal's unit of durability, so the torn tail of a
    killed writer is skipped exactly as the service itself does on
    replay — but a file with NO valid rows (missing, empty, or all
    garbage) is a hard input error: the sweep this gate was meant to
    check never recorded anything.
    """
    hint = ("rerun the bench sweep with journaling on "
            "(unset BVL_SWEEP_JOURNAL or point it at a path)")
    try:
        with open(path) as f:
            lines = f.read().splitlines()
    except FileNotFoundError:
        raise GateInputError("journal file %s does not exist; %s"
                             % (path, hint))
    except OSError as e:
        raise GateInputError("journal file %s is unreadable (%s); %s"
                             % (path, e.strerror, hint))
    rows, skipped = [], 0
    for line in lines:
        if not line.strip():
            continue
        try:
            row = json.loads(line)
        except ValueError:
            skipped += 1
            continue
        if (not isinstance(row, dict)
                or row.get("schema") != JOURNAL_SCHEMA
                or not isinstance(row.get("result"), dict)):
            skipped += 1
            continue
        rows.append(row)
    if not rows:
        raise GateInputError("journal file %s has no valid %s rows "
                             "(%d unusable line(s)) — truncated or not "
                             "a journal? %s"
                             % (path, JOURNAL_SCHEMA, skipped, hint))
    return rows, skipped


def check_journal(rows):
    """Return (failures, report_lines) for journaled sweep rows.

    Every journaled run must have finished with status "ok": a
    deadline, sim_error or lost-worker row means the sweep's printed
    figures silently lack a cell.
    """
    failures = []
    lines = []
    designs = set()
    total_wall_ms = 0.0
    for row in rows:
        design = row.get("design", "?")
        workload = row.get("workload", "?")
        designs.add(design)
        wall = row.get("wallMs", 0.0)
        if isinstance(wall, (int, float)):
            total_wall_ms += wall
        status = row["result"].get("status", "missing-status")
        if status != "ok":
            failures.append("%s/%s" % (design, workload))
            lines.append("%-10s %-14s %s" % (design, workload, status))
    lines.append("%d row(s), %d design(s), %.1f s simulation "
                 "wall-clock journaled"
                 % (len(rows), len(designs), total_wall_ms / 1000.0))
    return failures, lines


def compare(baseline, results, tolerance, benches):
    """Return (failures, report_lines); failures is a list of names."""
    failures = []
    lines = []
    for name in benches:
        if name not in baseline:
            failures.append(name)
            lines.append("%-20s MISSING from baseline" % name)
            continue
        if name not in results:
            failures.append(name)
            lines.append("%-20s MISSING from results" % name)
            continue
        base, new = baseline[name], results[name]
        ratio = new / base if base > 0 else float("inf")
        verdict = "ok"
        if ratio > 1.0 + tolerance:
            verdict = "REGRESSED"
            failures.append(name)
        elif ratio < 1.0 / (1.0 + tolerance):
            verdict = "improved"
        lines.append("%-20s %12.3f ns -> %12.3f ns  (%+6.1f%%)  %s"
                     % (name, base, new, (ratio - 1.0) * 100.0, verdict))
    return failures, lines


def self_test():
    """Machine-independent check that the gate actually gates."""
    baseline = {"BM_CacheHitPath": 25.0, "BM_TickChurn": 17000.0,
                "BM_StatIncrement": 0.4, "BM_FastForwardStep": 21000.0}

    ok = dict(baseline)
    failures, _ = compare(baseline, ok, 0.25, GATED)
    assert not failures, "identical results must pass: %s" % failures

    noisy = {k: v * 1.2 for k, v in baseline.items()}
    failures, _ = compare(baseline, noisy, 0.25, GATED)
    assert not failures, "20%% drift within 25%% tolerance: %s" % failures

    slow = dict(baseline)
    slow["BM_CacheHitPath"] *= 2.0  # injected slowdown
    failures, lines = compare(baseline, slow, 0.25, GATED)
    assert failures == ["BM_CacheHitPath"], \
        "2x slowdown must fail exactly one bench: %s" % failures
    assert any("REGRESSED" in l for l in lines)

    missing = dict(baseline)
    del missing["BM_TickChurn"]
    failures, _ = compare(baseline, missing, 0.25, GATED)
    assert failures == ["BM_TickChurn"], \
        "a dropped bench must fail: %s" % failures

    fast = {k: v * 0.5 for k, v in baseline.items()}
    failures, lines = compare(baseline, fast, 0.25, GATED)
    assert not failures
    assert all("improved" in l for l in lines)

    # Sampled-accuracy gate: bound holds, mean breach, row breach.
    def sampled_doc(errors, mean):
        return {"schema": SAMPLED_SCHEMA,
                "rows": [{"workload": w, "error": e, "speedup": 10.0}
                         for w, e in errors.items()],
                "meanAbsError": mean, "aggregateSpeedup": 10.0}

    good = sampled_doc({"vvadd": 0.01, "mmult": -0.02}, 0.015)
    failures, _ = check_sampled(good, 0.03)
    assert not failures, "1.5%% mean within 3%% bound: %s" % failures

    bad_mean = sampled_doc({"vvadd": 0.04, "mmult": -0.05}, 0.045)
    failures, lines = check_sampled(bad_mean, 0.03)
    assert failures == ["mean"], \
        "mean breach must fail exactly 'mean': %s" % failures
    assert any("EXCEEDS" in l for l in lines)

    bad_row = sampled_doc({"vvadd": 0.09, "mmult": 0.0}, 0.045)
    failures, _ = check_sampled(bad_row, 0.03)
    assert failures == ["vvadd", "mean"], \
        "9%% row must fail the 2x-mean per-row bound: %s" % failures

    no_err = {"schema": SAMPLED_SCHEMA,
              "rows": [{"workload": "vvadd"}], "meanAbsError": 0.0}
    failures, _ = check_sampled(no_err, 0.03)
    assert failures == ["vvadd"], \
        "a row without an error value must fail: %s" % failures

    # Broken input files: one actionable error each, never a traceback.
    import tempfile
    with tempfile.TemporaryDirectory() as tmp:
        cases = [
            (os.path.join(tmp, "absent.json"), None, "does not exist"),
            (os.path.join(tmp, "torn.json"), '{"benchmarks": [{"na',
             "not valid JSON"),
            (os.path.join(tmp, "scalar.json"), "42", "not an object"),
            (os.path.join(tmp, "empty.json"), '{"benchmarks": []}',
             "no iteration benchmarks"),
        ]
        for path, content, expect in cases:
            if content is not None:
                with open(path, "w") as f:
                    f.write(content)
            try:
                load_results(path)
            except GateInputError as e:
                assert expect in str(e), \
                    "wrong diagnosis for %s: %s" % (path, e)
            else:
                assert False, "%s must be rejected" % path
        bad_base = os.path.join(tmp, "base.json")
        with open(bad_base, "w") as f:
            f.write('{"something_else": {}}')
        try:
            load_baseline(bad_base)
        except GateInputError as e:
            assert "microbenchmarks" in str(e)
        else:
            assert False, "baseline without microbenchmarks must fail"
        bad_sampled = os.path.join(tmp, "sampled.json")
        cases = [
            ('{"schema": "bvl-other-v9", "rows": [{}], '
             '"meanAbsError": 0.1}', "has schema"),
            ('{"schema": "%s", "rows": [], "meanAbsError": 0.1}'
             % SAMPLED_SCHEMA, "no rows"),
            ('{"schema": "%s", "rows": [{}]}' % SAMPLED_SCHEMA,
             "meanAbsError"),
        ]
        for content, expect in cases:
            with open(bad_sampled, "w") as f:
                f.write(content)
            try:
                load_sampled(bad_sampled)
            except GateInputError as e:
                assert expect in str(e), \
                    "wrong sampled diagnosis: %s" % e
            else:
                assert False, "bad sampled doc must be rejected"

    # Mobile-tier gate: pass, regression, lost pattern, unverified,
    # missing cell, scale mismatch, input diagnoses.
    def mobile_doc(scale, rows):
        out = []
        for (w, d, ns, verified, unit, strided, indexed) in rows:
            out.append({"workload": w, "design": d, "ns": ns,
                        "verified": verified, "unitLines": unit,
                        "stridedLines": strided,
                        "indexedLines": indexed})
        return {"schema": MOBILE_SCHEMA, "scale": scale, "rows": out}

    mb = mobile_doc("tiny", [
        ("idct8", "1b-4VL", 50000.0, True, 64, 18432, 352),
        ("ycbcr", "1bDV", 20000.0, True, 0, 240, 288),
    ])
    failures, _ = check_mobile(mb, mb, 0.25)
    assert not failures, "identical mobile docs must pass: %s" % failures

    slow_mb = mobile_doc("tiny", [
        ("idct8", "1b-4VL", 90000.0, True, 64, 18432, 352),
        ("ycbcr", "1bDV", 20000.0, True, 0, 240, 288),
    ])
    failures, lines = check_mobile(mb, slow_mb, 0.25)
    assert failures == ["idct8/1b-4VL"], \
        "1.8x simulated-time must fail exactly one cell: %s" % failures
    assert any("REGRESSED" in l for l in lines)

    lost_mb = mobile_doc("tiny", [
        ("idct8", "1b-4VL", 50000.0, True, 64, 18432, 0),
        ("ycbcr", "1bDV", 20000.0, True, 0, 240, 288),
    ])
    failures, lines = check_mobile(mb, lost_mb, 0.25)
    assert failures == ["idct8/1b-4VL"], \
        "a lost indexed pattern must fail: %s" % failures
    assert any("LOST indexedLines" in l for l in lines)

    unver_mb = mobile_doc("tiny", [
        ("idct8", "1b-4VL", 50000.0, False, 64, 18432, 352),
        ("ycbcr", "1bDV", 20000.0, True, 0, 240, 288),
    ])
    failures, lines = check_mobile(mb, unver_mb, 0.25)
    assert failures == ["idct8/1b-4VL"], \
        "an unverified run must fail: %s" % failures
    assert any("NOT VERIFIED" in l for l in lines)

    missing_mb = mobile_doc("tiny", [
        ("ycbcr", "1bDV", 20000.0, True, 0, 240, 288),
    ])
    failures, _ = check_mobile(mb, missing_mb, 0.25)
    assert failures == ["idct8/1b-4VL"], \
        "a dropped cell must fail: %s" % failures

    try:
        check_mobile(mb, mobile_doc("small", []), 0.25)
    except GateInputError as e:
        assert "scale" in str(e)
    else:
        assert False, "scale mismatch must be a gate input error"

    with tempfile.TemporaryDirectory() as tmp:
        bad_mobile = os.path.join(tmp, "mobile.json")
        cases = [
            ('{"schema": "bvl-other-v9", "rows": [{}]}', "has schema"),
            ('{"schema": "%s", "rows": []}' % MOBILE_SCHEMA, "no rows"),
            ('{"schema": "%s", "rows": [{"workload": "x"}]}'
             % MOBILE_SCHEMA, "lacks workload/design/ns"),
        ]
        for content, expect in cases:
            with open(bad_mobile, "w") as f:
                f.write(content)
            try:
                load_mobile(bad_mobile, "mobile-results", "regenerate")
            except GateInputError as e:
                assert expect in str(e), \
                    "wrong mobile diagnosis: %s" % e
            else:
                assert False, "bad mobile doc must be rejected"

    # Journal gate: all-ok passes, a bad row fails, input diagnoses.
    def journal_line(design, workload, status, wall_ms=100.0):
        return json.dumps({"schema": JOURNAL_SCHEMA, "hash": "h",
                           "design": design, "workload": workload,
                           "scale": "tiny", "attempts": 1,
                           "source": "sim", "wallMs": wall_ms,
                           "result": {"status": status}})

    with tempfile.TemporaryDirectory() as tmp:
        good_j = os.path.join(tmp, "good.jsonl")
        with open(good_j, "w") as f:
            f.write(journal_line("1b-4VL", "saxpy", "ok") + "\n")
            f.write(journal_line("1bDV", "saxpy", "ok") + "\n")
            f.write('{"torn tail')  # killed writer, must be tolerated
        rows, skipped = load_journal(good_j)
        assert len(rows) == 2 and skipped == 1, \
            "torn tail must be skipped, not fatal"
        failures, lines = check_journal(rows)
        assert not failures, "all-ok journal must pass: %s" % failures
        assert any("2 row(s), 2 design(s)" in l for l in lines), lines

        bad_j = os.path.join(tmp, "bad.jsonl")
        with open(bad_j, "w") as f:
            f.write(journal_line("1b-4VL", "saxpy", "ok") + "\n")
            f.write(journal_line("1bDV", "kmeans", "sim_error") + "\n")
        failures, _ = check_journal(load_journal(bad_j)[0])
        assert failures == ["1bDV/kmeans"], \
            "a sim_error row must fail exactly that cell: %s" % failures

        cases = [
            (os.path.join(tmp, "absent.jsonl"), None, "does not exist"),
            (os.path.join(tmp, "empty.jsonl"), "", "no valid"),
            (os.path.join(tmp, "garbage.jsonl"), "not json\n{}\n",
             "no valid"),
            (os.path.join(tmp, "wrong.jsonl"),
             '{"schema": "bvl-other-v9", "result": {}}\n', "no valid"),
        ]
        for path, content, expect in cases:
            if content is not None:
                with open(path, "w") as f:
                    f.write(content)
            try:
                load_journal(path)
            except GateInputError as e:
                assert expect in str(e), \
                    "wrong journal diagnosis for %s: %s" % (path, e)
            else:
                assert False, "%s must be rejected" % path

    print("check_bench.py self-test: all cases behaved")
    return 0


def main():
    ap = argparse.ArgumentParser(
        description="compare kernel microbenches against the pinned "
                    "baseline")
    ap.add_argument("--baseline", default="BENCH_kernel.json",
                    help="pinned baseline (default: BENCH_kernel.json)")
    ap.add_argument("--results",
                    help="google-benchmark --benchmark_out JSON to check")
    ap.add_argument("--tolerance", type=float,
                    default=float(os.environ.get("BVL_BENCH_TOLERANCE",
                                                 "0.25")),
                    help="allowed slowdown fraction (default 0.25, env "
                         "BVL_BENCH_TOLERANCE)")
    ap.add_argument("--benches", default=",".join(GATED),
                    help="comma-separated gated bench names")
    ap.add_argument("--sampled",
                    help="bvl-sampled-validation-v1 JSON from "
                         "fig04_sampled to gate instead")
    ap.add_argument("--mobile",
                    help="bvl-mobile-tier-v1 JSON from fig_mobile to "
                         "gate against the pinned mobile baseline")
    ap.add_argument("--mobile-baseline", default="BENCH_mobile.json",
                    help="pinned mobile-tier baseline (default: "
                         "BENCH_mobile.json)")
    ap.add_argument("--journal",
                    help="bvl-sweep-journal-v1 JSONL from a bench "
                         "sweep: fail if any journaled run is not ok")
    ap.add_argument("--max-mean-error", type=float,
                    default=float(os.environ.get("BVL_SAMPLED_MAX_ERROR",
                                                 "0.03")),
                    help="allowed mean |cycle error| for --sampled "
                         "(default 0.03, env BVL_SAMPLED_MAX_ERROR)")
    ap.add_argument("--self-test", action="store_true",
                    help="verify the comparator catches an injected "
                         "slowdown, then exit")
    args = ap.parse_args()

    if args.self_test:
        return self_test()

    if args.sampled:
        try:
            doc = load_sampled(args.sampled)
        except GateInputError as e:
            print("sampled gate: ERROR: %s" % e, file=sys.stderr)
            return 1
        failures, lines = check_sampled(doc, args.max_mean_error)
        print("sampled gate: mean bound %.1f%%, %s @ %s"
              % (args.max_mean_error * 100.0, doc.get("design", "?"),
                 doc.get("scale", "?")))
        for line in lines:
            print("  " + line)
        if failures:
            print("FAIL: over bound: %s" % ", ".join(failures))
            print("(retune the per-workload configs in "
                  "bench/fig04_sampled.cc)")
            return 1
        print("sampled gate passed")
        return 0

    if args.mobile:
        try:
            baseline = load_mobile(
                args.mobile_baseline, "mobile-baseline",
                "regenerate with scripts/bench.sh --update")
            results = load_mobile(
                args.mobile, "mobile-results",
                "regenerate with BVL_MOBILE_OUT=%s "
                "build/bench/fig_mobile" % args.mobile)
            failures, lines = check_mobile(baseline, results,
                                           args.tolerance)
        except GateInputError as e:
            print("mobile gate: ERROR: %s" % e, file=sys.stderr)
            return 1
        print("mobile gate: tolerance %.0f%%, baseline %s @ %s"
              % (args.tolerance * 100.0, args.mobile_baseline,
                 baseline.get("scale", "?")))
        for line in lines:
            print("  " + line)
        if failures:
            print("FAIL: regressed/missing/pattern-lost: %s"
                  % ", ".join(failures))
            print("(intentional timing-model change? refresh with "
                  "scripts/bench.sh --update)")
            return 1
        print("mobile gate passed")
        return 0

    if args.journal:
        try:
            rows, skipped = load_journal(args.journal)
        except GateInputError as e:
            print("journal gate: ERROR: %s" % e, file=sys.stderr)
            return 1
        failures, lines = check_journal(rows)
        print("journal gate: %s" % args.journal)
        if skipped:
            print("  (skipped %d torn/foreign line(s))" % skipped)
        for line in lines:
            print("  " + line)
        if failures:
            print("FAIL: non-ok journaled run(s): %s"
                  % ", ".join(failures))
            return 1
        print("journal gate passed")
        return 0

    if not args.results:
        ap.error("--results, --sampled, --mobile or --journal is "
                 "required (or --self-test)")

    benches = [b for b in args.benches.split(",") if b]
    try:
        baseline = load_baseline(args.baseline)
        results = load_results(args.results)
    except GateInputError as e:
        print("bench gate: ERROR: %s" % e, file=sys.stderr)
        return 1
    failures, lines = compare(baseline, results, args.tolerance, benches)

    print("bench gate: tolerance %.0f%%, baseline %s"
          % (args.tolerance * 100.0, args.baseline))
    for line in lines:
        print("  " + line)
    if failures:
        print("FAIL: regressed/missing: %s" % ", ".join(failures))
        print("(intentional change? refresh with scripts/bench.sh "
              "--update)")
        return 1
    print("bench gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
