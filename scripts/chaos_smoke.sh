#!/usr/bin/env bash
# I/O chaos smoke (DESIGN.md §17), shared by scripts/ci.sh and the
# GitHub Actions workflow. Drives the unmodified bench/sweep_farm grid
# (journal + result cache + checkpoint farm + farm memo all armed)
# through the BVL_IO_FAULT seam and asserts the whole persistence
# stack degrades instead of corrupting:
#
#   1. reference run with BVL_IO_SITE_TRACE -> every injection site the
#      sweep reaches is enumerated; >= 25 distinct labels spanning the
#      journal, result cache, checkpoint store, claim/lock machinery
#      and the farm memo are required.
#   2. failure leg: every site label gets one seeded-random eligible
#      fault (ENOSPC / EIO / short write / torn rename / stale lock).
#      The run must exit 0 with stdout byte-identical to the reference
#      (degraded runs may differ only in stderr warnings and summary
#      counters) and leave no "*.tmp.*" litter.
#   3. crash leg: every site label gets an exit-mode crash (the
#      process _exit()s mid-operation, exactly like kill -9 at that
#      syscall). The run must die with the dedicated exit code 86; a
#      clean rerun over the same directories must then produce stdout
#      byte-identical to the reference and sweep up all temp litter.
#   4. seeded probabilistic soak: every site rolls at BVL_IO_FAULT_PROB
#      with a printed seed, as a randomized sanity pass over fault
#      combinations the per-site legs don't enumerate.
#
# The per-label fault kinds and the optional site subset are drawn
# from a seeded shuffle: BVL_CHAOS_SEED (default: date +%s, echoed for
# reproduction), BVL_CHAOS_SITES=N limits the legs to N seeded-random
# sites (0 = all, the default).
#
# Usage: scripts/chaos_smoke.sh [build-dir] [scratch-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
build="${1:-build}"
scratch="${2:-$build/chaos-smoke}"
bin="$build/bench/sweep_farm"
[ -x "$bin" ] || { echo "FAIL: $bin not built" >&2; exit 1; }

seed="${BVL_CHAOS_SEED:-$(date +%s)}"
sites="${BVL_CHAOS_SITES:-0}"
echo "chaos seed: $seed (rerun with BVL_CHAOS_SEED=$seed to reproduce)"

rm -rf "$scratch"
mkdir -p "$scratch"

# BVL_JOBS=1 keeps the seam's site sequence (and stdout) a pure
# function of the work performed.
benv=(env BVL_SCALE=tiny BVL_JOBS=1 BVL_CKPT_FARM=1
      BVL_CKPT_DIR="$scratch/farm" BVL_SWEEP_DIR="$scratch/sweep"
      BVL_CACHE_DIR="$scratch/cache")

fresh_dirs() {
    rm -rf "$scratch/farm" "$scratch/sweep" "$scratch/cache"
}

no_litter() {
    local leftovers
    leftovers=$(find "$scratch" -name '*.tmp.*' 2>/dev/null || true)
    if [ -n "$leftovers" ]; then
        echo "FAIL: temp litter after $1:" >&2
        echo "$leftovers" >&2
        exit 1
    fi
}

echo "--- reference run: enumerate every injection site"
fresh_dirs
"${benv[@]}" BVL_IO_SITE_TRACE="$scratch/sites.tsv" \
    "$bin" > "$scratch/ref.out" 2> "$scratch/ref.err"
no_litter "reference run"
grep -q 'verified' "$scratch/ref.out" \
    || { echo "FAIL: reference run produced no results" >&2; exit 1; }

# Distinct labels (first-reached order) with a seeded-random eligible
# fault kind each, optionally cut to a seeded subset of sites.
python3 - "$scratch/sites.tsv" "$seed" "$sites" \
    > "$scratch/specs.txt" <<'EOF'
import random
import sys

seen = {}
for line in open(sys.argv[1]):
    f = line.rstrip("\n").split("\t")
    if len(f) >= 3 and f[1] not in seen:
        seen[f[1]] = f[2]

required = ["journal.", "result_cache.", "ckpt_farm.", "checkpoint.",
            "farm_memo."]
missing = [c for c in required
           if not any(l.startswith(c) for l in seen)]
if missing or len(seen) < 25:
    sys.stderr.write(
        f"FAIL: site enumeration too thin: {len(seen)} labels, "
        f"missing components {missing}\n")
    sys.exit(1)

kinds = {"write": ["enospc", "short", "eio"],
         "fsync": ["enospc", "eio"],
         "mkdir": ["enospc", "eio"],
         "rename": ["torn", "eio"],
         "flock": ["stale_lock", "eio"]}
rng = random.Random(int(sys.argv[2]))
labels = list(seen)
rng.shuffle(labels)
subset = int(sys.argv[3])
if subset > 0:
    labels = labels[:subset]
for label in labels:
    print(f"{rng.choice(kinds.get(seen[label], ['eio']))}@{label}")
EOF
nspecs=$(wc -l < "$scratch/specs.txt")
echo "injecting at $nspecs of $(cut -f2 "$scratch/sites.tsv" \
    | sort -u | wc -l) enumerated sites"

echo "--- failure leg: one fault per site, stdout must not move"
while read -r spec; do
    fresh_dirs
    if ! "${benv[@]}" BVL_IO_FAULT="$spec" \
            "$bin" > "$scratch/fault.out" 2> "$scratch/fault.err"; then
        echo "FAIL: $spec made the sweep fail (see $scratch/fault.err)" >&2
        exit 1
    fi
    cmp "$scratch/ref.out" "$scratch/fault.out" \
        || { echo "FAIL: $spec changed sweep stdout" >&2; exit 1; }
    no_litter "$spec"
done < "$scratch/specs.txt"

echo "--- crash leg: _exit at each site, then recover on the same dirs"
while read -r spec; do
    label="${spec#*@}"
    fresh_dirs
    set +e
    "${benv[@]}" BVL_IO_FAULT="crash@$label" \
        "$bin" > "$scratch/crash.out" 2> "$scratch/crash.err"
    rc=$?
    set -e
    if [ "$rc" -ne 86 ]; then
        echo "FAIL: crash@$label exited $rc, expected 86" >&2
        cat "$scratch/crash.err" >&2
        exit 1
    fi
    "${benv[@]}" "$bin" > "$scratch/recover.out" 2> "$scratch/recover.err"
    cmp "$scratch/ref.out" "$scratch/recover.out" \
        || { echo "FAIL: recovery after crash@$label diverged" >&2
             exit 1; }
    no_litter "crash@$label + recovery"
done < "$scratch/specs.txt"

echo "--- seeded probabilistic soak (prob=0.02, seed=$seed)"
fresh_dirs
set +e
"${benv[@]}" BVL_IO_FAULT_PROB=0.02 BVL_IO_FAULT_SEED="$seed" \
    "$bin" > "$scratch/soak.out" 2> "$scratch/soak.err"
rc=$?
set -e
if [ "$rc" -eq 0 ]; then
    cmp "$scratch/ref.out" "$scratch/soak.out" \
        || { echo "FAIL: soak run changed sweep stdout" >&2; exit 1; }
elif [ "$rc" -ne 86 ]; then
    echo "FAIL: soak run exited $rc (expected 0 or crash code 86)" >&2
    cat "$scratch/soak.err" >&2
    exit 1
fi
# Whatever the soak left behind, a clean rerun must recover it.
"${benv[@]}" "$bin" > "$scratch/soak_recover.out" 2> /dev/null
cmp "$scratch/ref.out" "$scratch/soak_recover.out"
no_litter "probabilistic soak + recovery"

echo "chaos_smoke.sh: all $nspecs fault + crash sites recovered cleanly"
