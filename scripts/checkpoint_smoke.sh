#!/usr/bin/env bash
# Checkpoint + sampled-simulation smoke (DESIGN.md §15), shared by
# scripts/ci.sh and the GitHub Actions workflow. Exercises, against
# the example_run_workload driver and a live sweep:
#
#   1. save run (--checkpoint --ff)  -> checkpoint written, run finishes
#   2. restore run (--restore)       -> stdout byte-identical to save run
#   3. warm restore rerun            -> byte-identical again
#   4. corrupt checkpoint (bit flip) -> quarantined as *.corrupt and
#                                       re-simulated, never trusted;
#                                       stdout still byte-identical
#   5. sampled run (--sample) twice  -> byte-identical (determinism)
#   6. save/restore mid-sweep        -> checkpoint runs concurrent with
#                                       a sweep-service sweep; neither
#                                       perturbs the other
#
# and, against the bench/sweep_farm grid, the checkpoint-prefix farm
# (DESIGN.md §16):
#
#   7. cold populate                 -> one production per unique prefix,
#                                       stdout identical to the no-farm run
#   8. warm rerun                    -> zero productions, all hits,
#                                       stdout still identical
#   9. corrupt farm entry            -> quarantined as *.corrupt,
#                                       re-produced, stdout unchanged
#  10. isolate-mode race             -> forked workers contend for the
#                                       same entries via flock; stdout
#                                       unchanged
#
# Usage: scripts/checkpoint_smoke.sh [build-dir] [scratch-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
build="${1:-build}"
scratch="${2:-$build/ckpt-smoke}"
run="$build/examples/example_run_workload"
sweep="$build/bench/fig04_speedup"
[ -x "$run" ] || { echo "FAIL: $run not built" >&2; exit 1; }
[ -x "$sweep" ] || { echo "FAIL: $sweep not built" >&2; exit 1; }

rm -rf "$scratch"
mkdir -p "$scratch"
ckpt="$scratch/saxpy.bvl"
args=(--workload saxpy --design 1b-4VL --scale small)

echo "--- save run: fast-forward 2000 insts, checkpoint, finish"
"$run" "${args[@]}" --checkpoint "$ckpt" --ff 2000 > "$scratch/save.out"
[ -s "$ckpt" ] || { echo "FAIL: no checkpoint at $ckpt" >&2; exit 1; }
grep -q '^verified  yes' "$scratch/save.out" \
    || { echo "FAIL: save run did not verify" >&2; exit 1; }

echo "--- restore run: byte-identical to the uninterrupted save run"
"$run" "${args[@]}" --restore "$ckpt" --ff 2000 > "$scratch/restore.out"
cmp "$scratch/save.out" "$scratch/restore.out"

echo "--- warm restore rerun: still byte-identical"
"$run" "${args[@]}" --restore "$ckpt" --ff 2000 > "$scratch/restore2.out"
cmp "$scratch/save.out" "$scratch/restore2.out"

echo "--- corrupt checkpoint: quarantined and re-simulated"
python3 - "$ckpt" <<'EOF'
import sys
path = sys.argv[1]
data = bytearray(open(path, "rb").read())
data[-1] ^= 0xFF  # flip payload bits so the digest cannot match
open(path, "wb").write(data)
EOF
"$run" "${args[@]}" --restore "$ckpt" --ff 2000 \
    > "$scratch/poison.out" 2> "$scratch/poison.err"
[ -e "$ckpt.corrupt" ] \
    || { echo "FAIL: corrupt checkpoint not quarantined" >&2; exit 1; }
[ -e "$ckpt" ] \
    && { echo "FAIL: corrupt checkpoint left in place" >&2; exit 1; }
grep -q 'quarantined' "$scratch/poison.err" \
    || { echo "FAIL: no quarantine warning on stderr" >&2; exit 1; }
cmp "$scratch/save.out" "$scratch/poison.out"

echo "--- sampled run: identical stdout across reruns"
"$run" "${args[@]}" --sample 2000:400:500:4 > "$scratch/sampled1.out"
"$run" "${args[@]}" --sample 2000:400:500:4 > "$scratch/sampled2.out"
cmp "$scratch/sampled1.out" "$scratch/sampled2.out"
grep -q '^verified  yes' "$scratch/sampled1.out" \
    || { echo "FAIL: sampled run did not verify" >&2; exit 1; }

echo "--- save/restore mid-sweep under the sweep service"
BVL_SCALE=tiny BVL_JOBS=4 BVL_SWEEP_DIR="$scratch/sweep.bg" \
    "$sweep" > "$scratch/sweep.bg.out" 2> /dev/null &
bg=$!
mid="$scratch/mid.bvl"
"$run" "${args[@]}" --checkpoint "$mid" --ff 2000 > "$scratch/mid_save.out"
"$run" "${args[@]}" --restore "$mid" --ff 2000 > "$scratch/mid_restore.out"
cmp "$scratch/save.out" "$scratch/mid_save.out"      # vs solo save run
cmp "$scratch/mid_save.out" "$scratch/mid_restore.out"
wait "$bg"
BVL_SCALE=tiny BVL_JOBS=4 BVL_SWEEP_DIR="$scratch/sweep.solo" \
    "$sweep" > "$scratch/sweep.solo.out" 2> /dev/null
cmp "$scratch/sweep.bg.out" "$scratch/sweep.solo.out"

sfarm="$build/bench/sweep_farm"
[ -x "$sfarm" ] || { echo "FAIL: $sfarm not built" >&2; exit 1; }
farm="$scratch/farm"
# The journal would short-circuit reruns before the farm is even
# consulted; this leg measures the farm, so journaling stays off.
fenv=(env BVL_SCALE=tiny BVL_SWEEP_JOURNAL=0 BVL_CKPT_FARM=1
      BVL_CKPT_DIR="$farm")

echo "--- farm cold populate: one production per unique prefix"
BVL_SCALE=tiny BVL_SWEEP_JOURNAL=0 "$sfarm" \
    > "$scratch/farm_none.out" 2> /dev/null
"${fenv[@]}" "$sfarm" > "$scratch/farm_cold.out" 2> "$scratch/farm_cold.err"
cmp "$scratch/farm_none.out" "$scratch/farm_cold.out"
grep -q 'farm_produced=3' "$scratch/farm_cold.err" \
    || { echo "FAIL: cold farm run did not produce 3 prefixes" >&2
         cat "$scratch/farm_cold.err" >&2; exit 1; }
entries=$(find "$farm" -name '*.bvl' | wc -l)
[ "$entries" -eq 3 ] \
    || { echo "FAIL: expected 3 farm entries, found $entries" >&2; exit 1; }

echo "--- farm warm rerun: zero fast-forwards, stdout unchanged"
"${fenv[@]}" "$sfarm" > "$scratch/farm_warm.out" 2> "$scratch/farm_warm.err"
cmp "$scratch/farm_none.out" "$scratch/farm_warm.out"
grep -q 'farm_produced=0' "$scratch/farm_warm.err" \
    || { echo "FAIL: warm farm rerun re-produced a prefix" >&2
         cat "$scratch/farm_warm.err" >&2; exit 1; }
grep -q 'farm_hits=7' "$scratch/farm_warm.err" \
    || { echo "FAIL: warm farm rerun did not restore all 7 cells" >&2
         cat "$scratch/farm_warm.err" >&2; exit 1; }

echo "--- corrupt farm entry: quarantined, re-produced, stdout unchanged"
victim=$(find "$farm" -name '*.bvl' | sort | head -n 1)
python3 - "$victim" <<'EOF'
import sys
path = sys.argv[1]
data = bytearray(open(path, "rb").read())
data[-1] ^= 0xFF  # flip payload bits so the digest cannot match
open(path, "wb").write(data)
EOF
"${fenv[@]}" "$sfarm" > "$scratch/farm_poison.out" 2> "$scratch/farm_poison.err"
cmp "$scratch/farm_none.out" "$scratch/farm_poison.out"
[ -e "$victim.corrupt" ] \
    || { echo "FAIL: corrupt farm entry not quarantined" >&2; exit 1; }
[ -e "$victim" ] \
    || { echo "FAIL: corrupt farm entry not re-produced" >&2; exit 1; }
grep -q 'farm_corrupt=1' "$scratch/farm_poison.err" \
    || { echo "FAIL: corruption not counted in the sweep summary" >&2
         cat "$scratch/farm_poison.err" >&2; exit 1; }

echo "--- farm race under subprocess isolation (flock across workers)"
rm -rf "$farm"   # cold again: every forked worker misses and contends
"${fenv[@]}" BVL_SWEEP_ISOLATE=1 BVL_JOBS=4 "$sfarm" \
    > "$scratch/farm_race.out" 2> /dev/null
cmp "$scratch/farm_none.out" "$scratch/farm_race.out"
entries=$(find "$farm" -name '*.bvl' | wc -l)
[ "$entries" -eq 3 ] \
    || { echo "FAIL: isolate race left $entries entries, expected 3" >&2
         exit 1; }

echo "checkpoint_smoke.sh: all checkpoint/sampling/farm checks passed"
