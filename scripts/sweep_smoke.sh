#!/usr/bin/env bash
# Crash-safety smoke for the sweep service (DESIGN.md §14), shared by
# scripts/ci.sh and the GitHub Actions workflow. Exercises, against a
# real figure bench (fig05, tiny scale):
#
#   1. warm journal rerun     -> zero simulations, byte-identical stdout
#   2. kill -9 mid-sweep      -> resume completes, byte-identical stdout
#   3. poisoned cache entry   -> detected, quarantined, re-simulated
#   4. subprocess isolation   -> BVL_SWEEP_ISOLATE=1, byte-identical
#   5. SIGINT                 -> graceful drain, resumable exit code 75
#
# Usage: scripts/sweep_smoke.sh [build-dir] [scratch-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
build="${1:-build}"
scratch="${2:-$build/sweep-smoke}"
bench="$build/bench/fig05_ifetch"
[ -x "$bench" ] || { echo "FAIL: $bench not built" >&2; exit 1; }

rm -rf "$scratch"
mkdir -p "$scratch"
export BVL_SCALE=tiny
export BVL_CACHE_DIR="$scratch/cache"

summary_of() { grep '^bvl-sweep-summary:' "$1" | tail -1; }

expect_in_summary() { # <stderr-file> <needle> <what>
    if ! summary_of "$1" | grep -q "$2"; then
        echo "FAIL: $3 (wanted '$2' in: $(summary_of "$1"))" >&2
        exit 1
    fi
}

echo "--- cold run (journal + cache populated)"
BVL_JOBS=4 BVL_SWEEP_DIR="$scratch/s1" \
    "$bench" > "$scratch/cold.out" 2> "$scratch/cold.err"
summary_of "$scratch/cold.err"
expect_in_summary "$scratch/cold.err" 'cache_hits=0' "cold run hit cache"

echo "--- warm journal rerun: zero simulations"
BVL_JOBS=4 BVL_SWEEP_DIR="$scratch/s1" \
    "$bench" > "$scratch/warm.out" 2> "$scratch/warm.err"
summary_of "$scratch/warm.err"
expect_in_summary "$scratch/warm.err" ' simulated=0 ' \
    "warm journal rerun re-simulated"
cmp "$scratch/cold.out" "$scratch/warm.out"

echo "--- kill -9 mid-sweep, then resume"
set +e
BVL_JOBS=1 BVL_SWEEP_DIR="$scratch/s2" BVL_CACHE_DIR= \
    "$bench" > "$scratch/killed.out" 2> /dev/null &
victim=$!
sleep 0.15
kill -9 "$victim" 2>/dev/null
wait "$victim"
killed_status=$?
set -e
if [ "$killed_status" -eq 137 ]; then
    echo "    killed mid-flight" \
         "($(wc -l < "$scratch"/s2/*.journal.jsonl) jobs journaled)"
else
    echo "    note: sweep finished before the kill landed" \
         "(status $killed_status); resume still exercises replay"
fi
BVL_JOBS=1 BVL_SWEEP_DIR="$scratch/s2" BVL_CACHE_DIR= \
    "$bench" > "$scratch/resumed.out" 2> "$scratch/resumed.err"
summary_of "$scratch/resumed.err"
cmp "$scratch/cold.out" "$scratch/resumed.out"

echo "--- poisoned cache entry: detected, quarantined, re-simulated"
entry=$(find "$BVL_CACHE_DIR" -name '*.json' | sort | head -1)
[ -n "$entry" ] || { echo "FAIL: no cache entries written" >&2; exit 1; }
truncate -s 25 "$entry"
BVL_JOBS=4 BVL_SWEEP_DIR="$scratch/s3" \
    "$bench" > "$scratch/poison.out" 2> "$scratch/poison.err"
summary_of "$scratch/poison.err"
expect_in_summary "$scratch/poison.err" 'cache_corrupt=1' \
    "corrupt cache entry not detected"
[ -e "$entry.corrupt" ] \
    || { echo "FAIL: corrupt entry not quarantined" >&2; exit 1; }
cmp "$scratch/cold.out" "$scratch/poison.out"

echo "--- subprocess isolation (BVL_SWEEP_ISOLATE=1)"
BVL_JOBS=2 BVL_SWEEP_DIR="$scratch/s4" BVL_CACHE_DIR= \
    BVL_SWEEP_ISOLATE=1 \
    "$bench" > "$scratch/iso.out" 2> "$scratch/iso.err"
summary_of "$scratch/iso.err"
cmp "$scratch/cold.out" "$scratch/iso.out"

echo "--- SIGINT: graceful drain, resumable exit code"
set +e
BVL_JOBS=1 BVL_SWEEP_DIR="$scratch/s5" BVL_CACHE_DIR= \
    "$bench" > "$scratch/int.out" 2> "$scratch/int.err" &
victim=$!
sleep 0.3
kill -INT "$victim" 2>/dev/null
wait "$victim"
int_status=$?
set -e
if [ "$int_status" -eq 75 ]; then
    expect_in_summary "$scratch/int.err" 'interrupted=1' \
        "interrupted sweep not flagged"
    BVL_JOBS=1 BVL_SWEEP_DIR="$scratch/s5" BVL_CACHE_DIR= \
        "$bench" > "$scratch/int_resumed.out" 2> /dev/null
    cmp "$scratch/cold.out" "$scratch/int_resumed.out"
    echo "    exit 75, resumed byte-identical"
elif [ "$int_status" -eq 0 ]; then
    # Fast machine: the sweep drained before the signal landed. The
    # interrupted path is still covered by tests/test_sweep_service.cc.
    echo "    note: sweep finished before SIGINT landed; skipping"
    cmp "$scratch/cold.out" "$scratch/int.out"
else
    echo "FAIL: SIGINT produced exit $int_status (want 75)" >&2
    exit 1
fi

echo "sweep_smoke.sh: all crash-safety checks passed"
