#!/usr/bin/env bash
# Simulation-kernel benchmark harness.
#
# Builds the benchmarks in a dedicated Release tree (build-bench), runs
# the kernel microbenchmarks plus a timed fig04 sweep, and writes the
# numbers to a JSON document. Run it before and after touching the hot
# simulation loops (event queue, Clocked tick path, stat counters,
# cache access path) and compare the two files.
#
# By default the measurements land in build-bench/BENCH_kernel.json
# and build-bench/BENCH_mobile.json so a casual run never disturbs the
# pinned baselines that scripts/check_bench.py gates against. After an
# intentional perf or timing-model change, refresh the pins with:
#
#   scripts/bench.sh --update     # rewrites BENCH_kernel.json
#                                 # and BENCH_mobile.json
#
# Usage: scripts/bench.sh [--update | output.json]
set -euo pipefail

cd "$(dirname "$0")/.."
out=build-bench/BENCH_kernel.json
mobile_out=build-bench/BENCH_mobile.json
if [ "${1:-}" = "--update" ]; then
    out=BENCH_kernel.json
    mobile_out=BENCH_mobile.json
elif [ -n "${1:-}" ]; then
    out="$1"
fi
jobs=$(nproc)

echo "=== building benchmarks (Release) ==="
cmake -B build-bench -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build-bench -j "$jobs" \
      --target microbench_sim fig04_speedup fig_mobile >/dev/null

echo "=== kernel microbenchmarks ==="
micro_json=build-bench/microbench.json
./build-bench/bench/microbench_sim \
    --benchmark_filter='BM_EventQueue|BM_TickChurn|BM_Stat|BM_CacheHitPath|BM_FastForwardStep|BM_LittleCoreSimSpeed|BM_BigCoreSimSpeed' \
    --benchmark_min_time=0.5 \
    --benchmark_out="$micro_json" --benchmark_out_format=json

echo "=== fig04 wall clock (tiny scale, single-threaded) ==="
fig04_start=$(date +%s.%N)
BVL_SCALE=tiny BVL_JOBS=1 ./build-bench/bench/fig04_speedup \
    > build-bench/fig04.out
fig04_end=$(date +%s.%N)
fig04_s=$(python3 -c "print(f'{$fig04_end - $fig04_start:.3f}')")
echo "fig04_speedup: ${fig04_s}s"

echo "=== mobile tier (tiny scale, single-threaded) ==="
# Simulated time and VMU pattern counts are machine-independent, so
# this baseline is tight: check_bench.py --mobile flags any timing-
# model change and any kernel that lost an access-pattern path.
BVL_SCALE=tiny BVL_JOBS=1 BVL_MOBILE_OUT="$mobile_out" \
    BVL_SWEEP_DIR=build-bench/.bvl-sweep-mobile \
    ./build-bench/bench/fig_mobile > build-bench/fig_mobile.out
echo "wrote $mobile_out"

python3 - "$micro_json" "$out" "$fig04_s" <<'EOF'
import json, os, subprocess, sys

micro_path, out_path, fig04_s = sys.argv[1], sys.argv[2], sys.argv[3]
with open(micro_path) as f:
    data = json.load(f)

# A hand-recorded "baseline" block (numbers from an older revision)
# survives regeneration so the comparison stays in the file.
baseline = None
if os.path.exists(out_path):
    try:
        with open(out_path) as f:
            baseline = json.load(f).get("baseline")
    except (OSError, ValueError):
        pass

bench = {}
for b in data.get("benchmarks", []):
    if b.get("run_type", "iteration") != "iteration":
        continue
    entry = {
        "time_ns": round(b["real_time"], 3),
        "cpu_ns": round(b["cpu_time"], 3),
    }
    for k in ("ticks/s", "simCycles/s", "runs/s"):
        if k in b:
            entry[k] = round(b[k], 1)
    bench[b["name"]] = entry

git_rev = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                         capture_output=True, text=True).stdout.strip()

result = {
    "revision": git_rev or "unknown",
    "build_type": "Release",
    "context": {k: data["context"][k]
                for k in ("num_cpus", "mhz_per_cpu")
                if k in data.get("context", {})},
    "microbenchmarks": bench,
    "fig04_tiny_j1_wall_s": float(fig04_s),
}
if baseline is not None:
    result["baseline"] = baseline
with open(out_path, "w") as f:
    json.dump(result, f, indent=2)
    f.write("\n")
print(f"wrote {out_path}")
EOF
